// Package cli holds the workload-sweep and analysis flows shared by the
// command-line binaries, so cmd/setconsensus and cmd/experiments render
// identical summaries and apply identical defaults instead of drifting
// copies. Every flow takes a context — the binaries install
// signal.NotifyContext and -timeout around it — and each has a remote
// twin that submits the same reference to a setconsensusd server and
// renders the returned result identically, so `-server` output diffs
// clean against local output.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	setconsensus "setconsensus"
	"setconsensus/internal/chaos"
	"setconsensus/internal/coord"
	"setconsensus/internal/service"
)

// ExitCancelled is the distinct exit code of a run cut short by
// SIGINT/SIGTERM or -timeout (128+SIGINT by shell convention), so
// scripts can tell "cancelled" from "claim failed" (1) and "bad
// invocation" (2).
const ExitCancelled = 130

// Cancelled reports whether err is a context cancellation or deadline
// expiry — the binaries' exit-code branch.
func Cancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// SplitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// SweepWorkload parses the workload reference, streams it through the
// named protocols on the given backend, prints the summary table to w,
// and returns the summary for the caller's exit-code policy. A t < 0
// defaults to PatternCrashBound — each adversary's own failure count,
// the bound the named family curves are designed for (and the one the
// pre-workload CLI derived via CollapseT); pass an explicit t ≥ 0 to pin
// an a-priori bound across the sweep. Cancelling ctx aborts the sweep
// mid-stream with ctx's error.
func SweepWorkload(ctx context.Context, w io.Writer, workloadRef string, refs []string, backend setconsensus.BackendKind, k, t int) (*setconsensus.Summary, error) {
	src, err := setconsensus.ParseWorkload(workloadRef)
	if err != nil {
		return nil, err
	}
	if t < 0 {
		t = setconsensus.PatternCrashBound
	}
	eng := setconsensus.New(
		setconsensus.WithBackend(backend),
		setconsensus.WithCrashBound(t),
		setconsensus.WithDegree(k),
	)
	sum, err := eng.SweepSource(ctx, refs, src)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, setconsensus.SummaryTable(sum).Render())
	return sum, nil
}

// CoordinateOpts configures a coordinated (sharded, checkpointed)
// workload sweep.
type CoordinateOpts struct {
	// Workers is the number of in-process engine workers (each with its
	// own Engine over the shared workload source).
	Workers int
	// Join lists setconsensusd base URLs to enlist as remote workers;
	// each receives range-scoped sweep jobs.
	Join []string
	// Checkpoint, when non-empty, enables durable resume: state is
	// written atomically to this file on every completed range, and an
	// existing file is resumed from.
	Checkpoint string
	// RangeSize overrides the adversaries-per-range default (0 = keep).
	RangeSize int
	// Lease overrides the per-range lease duration (0 = keep).
	Lease time.Duration
	// Chaos, when non-empty, is a chaos.ParseSpec fault-injection spec
	// (e.g. "seed=7,crash=0.1,torn#1") threaded through the coordinator
	// and every worker. The injected faults exercise the retry, breaker,
	// and checkpoint-recovery paths; the rendered summary must still be
	// byte-identical to the faultless run. Fault counts and coordinator
	// stats are reported to stderr, never stdout.
	Chaos string
}

// CoordinateWorkload is SweepWorkload run through the internal/coord
// coordinator: the workload's offset space is carved into ranges,
// leased to the in-process and remote workers, and the partial
// summaries merge into the exact summary — and the exact rendered
// table — the monolithic sweep produces. On cancellation the error is
// returned after a final checkpoint, so re-running the same invocation
// resumes instead of restarting.
func CoordinateWorkload(ctx context.Context, w io.Writer, workloadRef string, refs []string, backend setconsensus.BackendKind, k, t int, opts CoordinateOpts) (*setconsensus.Summary, error) {
	src, err := setconsensus.ParseWorkload(workloadRef)
	if err != nil {
		return nil, err
	}
	p := coord.Default()
	if opts.RangeSize > 0 {
		p.RangeSize = opts.RangeSize
	}
	if opts.Lease > 0 {
		p.Lease = opts.Lease
	}
	p.CheckpointPath = opts.Checkpoint
	if n, known := src.Count(); known {
		p.Total = n
	}
	var inj *chaos.Seeded
	if opts.Chaos != "" {
		inj, err = chaos.ParseSpec(opts.Chaos)
		if err != nil {
			return nil, err
		}
		p.Chaos = inj
	}
	c, err := coord.New(src.Label(), refs, p)
	if err != nil {
		return nil, err
	}

	tLocal := t
	if tLocal < 0 {
		tLocal = setconsensus.PatternCrashBound // the workload-sweep default, as in SweepWorkload
	}
	var workers []coord.Worker
	for i := 0; i < opts.Workers; i++ {
		eng := setconsensus.New(
			setconsensus.WithBackend(backend),
			setconsensus.WithCrashBound(tLocal),
			setconsensus.WithDegree(k),
		)
		ew := coord.NewEngineWorker(fmt.Sprintf("local-%d", i), eng, refs, src, 0)
		if inj != nil {
			ew.WithChaos(inj)
		}
		workers = append(workers, ew)
	}
	for i, base := range opts.Join {
		rw := coord.NewRemoteWorker(fmt.Sprintf("remote-%d(%s)", i, base), base,
			service.JobRequest{
				Refs:     refs,
				Workload: workloadRef,
				Params:   jobParams(backend, k, t), // t < 0 by omission: the server's own sweep default
			})
		if inj != nil {
			rw.WithChaos(inj)
		}
		workers = append(workers, rw)
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("coordinated sweep needs -workers and/or -join")
	}

	sum, err := c.Run(ctx, workers, nil)
	if inj != nil {
		// Chaos accounting goes to stderr only: stdout must stay
		// byte-identical to the monolithic sweep, faults or not.
		reportChaos(os.Stderr, inj, c.Stats())
	}
	if err != nil {
		if Cancelled(err) && opts.Checkpoint != "" {
			fmt.Fprintf(w, "sweep interrupted; checkpoint saved to %s — re-run to resume\n", opts.Checkpoint)
		}
		return nil, err
	}
	fmt.Fprintln(w, setconsensus.SummaryTable(sum).Render())
	return sum, nil
}

// reportChaos prints the fault-injection tally and the coordinator's
// robustness counters after a chaotic coordinated run.
func reportChaos(w io.Writer, inj *chaos.Seeded, st coord.Stats) {
	faults := inj.String()
	if faults == "" {
		faults = "none"
	}
	fmt.Fprintf(w, "chaos: injected %s\n", faults)
	fmt.Fprintf(w, "coord: ranges=%d retries=%d refunds=%d expiries=%d trips=%d probations=%d quarantined=%d ckpt-fallbacks=%d\n",
		st.RangesDone, st.RangeRetries, st.AttemptsRefunded, st.LeaseExpiries,
		st.BreakerTrips, st.ProbationGrants, st.QuarantinedWorkers, st.CheckpointFallbacks)
}

// RunAnalysis resolves an analysis reference ("search:optmin:width=2",
// "forced:k=3", ...), runs it through Engine.AnalyzeStream on the given
// backend (the search families require Oracle and error otherwise — the
// engine enforces it, so a -backend wire typo fails loudly instead of
// silently running on Oracle), prints per-stage progress lines followed
// by the report table to w, and returns the report for the caller's
// exit-code policy (a beaten search is a claim violation). k ≥ 1 sets
// the engine degree the families default to.
func RunAnalysis(ctx context.Context, w io.Writer, ref string, backend setconsensus.BackendKind, k int) (*setconsensus.AnalysisReport, error) {
	opts := []setconsensus.Option{setconsensus.WithBackend(backend)}
	if k >= 1 {
		opts = append(opts, setconsensus.WithDegree(k))
	}
	eng := setconsensus.New(opts...)
	lastStage := ""
	rep, err := eng.AnalyzeStream(ctx, ref, func(p setconsensus.AnalysisProgress) {
		if p.Stage == lastStage {
			return
		}
		lastStage = p.Stage
		fmt.Fprintf(w, "stage %s...\n", p.Stage)
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, setconsensus.AnalysisTable(rep).Render())
	return rep, nil
}

// ListAnalyses prints the registered analysis families with their
// parameter vocabulary, mirroring the protocol and workload listings.
func ListAnalyses(w io.Writer) {
	for _, spec := range setconsensus.DefaultAnalyses().Specs() {
		fmt.Fprintf(w, "%-14s %s\n", spec.Name, spec.Summary)
		fmt.Fprintf(w, "%-14s   params: %s\n", "", spec.Params)
	}
}

// jobParams maps the shared CLI flags onto a job's engine parameters.
// The t < 0 workload default (each adversary's failure count) is the
// server's own sweep default, so it is expressed by omission.
func jobParams(backend setconsensus.BackendKind, k, t int) service.JobParams {
	p := service.JobParams{Backend: backend.String()}
	if k >= 1 {
		p.K = k
	}
	if t >= 0 {
		p.T = &t
	}
	return p
}

// SweepWorkloadRemote is SweepWorkload against a setconsensusd server:
// it submits the same workload reference as a sweep job, waits on the
// job's SSE stream, and renders the returned Summary through the same
// table path, so remote output is byte-identical to local output for
// the same reference.
func SweepWorkloadRemote(ctx context.Context, w io.Writer, server, workloadRef string, refs []string, backend setconsensus.BackendKind, k, t int) (*setconsensus.Summary, error) {
	c := &service.Client{Base: server}
	st, err := c.SubmitAndWait(ctx, service.JobRequest{
		Kind:     service.KindSweep,
		Refs:     refs,
		Workload: workloadRef,
		Params:   jobParams(backend, k, t),
	}, nil)
	if err != nil {
		return nil, err
	}
	if st.State != service.StateDone {
		return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Fprintln(w, setconsensus.SummaryTable(st.Summary).Render())
	return st.Summary, nil
}

// RunAnalysisRemote is RunAnalysis against a setconsensusd server,
// printing the same per-stage progress lines from the job's SSE stream
// followed by the same report table.
func RunAnalysisRemote(ctx context.Context, w io.Writer, server, ref string, backend setconsensus.BackendKind, k int) (*setconsensus.AnalysisReport, error) {
	c := &service.Client{Base: server}
	lastStage := ""
	st, err := c.SubmitAndWait(ctx, service.JobRequest{
		Kind:     service.KindAnalysis,
		Analysis: ref,
		Params:   jobParams(backend, k, -1),
	}, func(p service.JobProgress) {
		if p.Stage == lastStage {
			return
		}
		lastStage = p.Stage
		fmt.Fprintf(w, "stage %s...\n", p.Stage)
	})
	if err != nil {
		return nil, err
	}
	if st.State != service.StateDone {
		return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	fmt.Fprintln(w, setconsensus.AnalysisTable(st.Analysis).Render())
	return st.Analysis, nil
}
