// Package cli holds the workload-sweep flow shared by the command-line
// binaries, so cmd/setconsensus and cmd/experiments render identical
// summaries and apply identical defaults instead of drifting copies.
package cli

import (
	"context"
	"fmt"
	"io"
	"strings"

	setconsensus "setconsensus"
)

// SplitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// SweepWorkload parses the workload reference, streams it through the
// named protocols on the given backend, prints the summary table to w,
// and returns the summary for the caller's exit-code policy. A t < 0
// defaults to PatternCrashBound — each adversary's own failure count,
// the bound the named family curves are designed for (and the one the
// pre-workload CLI derived via CollapseT); pass an explicit t ≥ 0 to pin
// an a-priori bound across the sweep.
func SweepWorkload(w io.Writer, workloadRef string, refs []string, backend setconsensus.BackendKind, k, t int) (*setconsensus.Summary, error) {
	src, err := setconsensus.ParseWorkload(workloadRef)
	if err != nil {
		return nil, err
	}
	if t < 0 {
		t = setconsensus.PatternCrashBound
	}
	eng := setconsensus.New(
		setconsensus.WithBackend(backend),
		setconsensus.WithCrashBound(t),
		setconsensus.WithDegree(k),
	)
	sum, err := eng.SweepSource(context.Background(), refs, src)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, setconsensus.SummaryTable(sum).Render())
	return sum, nil
}

// RunAnalysis resolves an analysis reference ("search:optmin:width=2",
// "forced:k=3", ...), runs it through Engine.AnalyzeStream on the given
// backend (the search families require Oracle and error otherwise — the
// engine enforces it, so a -backend wire typo fails loudly instead of
// silently running on Oracle), prints per-stage progress lines followed
// by the report table to w, and returns the report for the caller's
// exit-code policy (a beaten search is a claim violation). k ≥ 1 sets
// the engine degree the families default to.
func RunAnalysis(w io.Writer, ref string, backend setconsensus.BackendKind, k int) (*setconsensus.AnalysisReport, error) {
	opts := []setconsensus.Option{setconsensus.WithBackend(backend)}
	if k >= 1 {
		opts = append(opts, setconsensus.WithDegree(k))
	}
	eng := setconsensus.New(opts...)
	lastStage := ""
	rep, err := eng.AnalyzeStream(context.Background(), ref, func(p setconsensus.AnalysisProgress) {
		if p.Stage == lastStage {
			return
		}
		lastStage = p.Stage
		fmt.Fprintf(w, "stage %s...\n", p.Stage)
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, setconsensus.AnalysisTable(rep).Render())
	return rep, nil
}

// ListAnalyses prints the registered analysis families with their
// parameter vocabulary, mirroring the protocol and workload listings.
func ListAnalyses(w io.Writer) {
	for _, spec := range setconsensus.DefaultAnalyses().Specs() {
		fmt.Fprintf(w, "%-14s %s\n", spec.Name, spec.Summary)
		fmt.Fprintf(w, "%-14s   params: %s\n", "", spec.Params)
	}
}
