package cli

import (
	"context"
	"io"
	"strings"
	"testing"

	setconsensus "setconsensus"
)

func TestSplitList(t *testing.T) {
	got := SplitList(" optmin, upmin ,,floodmin ")
	if len(got) != 3 || got[0] != "optmin" || got[1] != "upmin" || got[2] != "floodmin" {
		t.Fatalf("SplitList = %v", got)
	}
	if SplitList("") != nil {
		t.Error("empty list must be nil")
	}
}

// TestSweepWorkloadDefaultsToPatternBound pins the parity with the
// removed -collapse-k/-collapse-r flags: those derived t = CollapseT =
// k(r+1) per adversary, and the workload default must reproduce it —
// FloodMin on collapse k=2,r=3 decides at ⌊t/k⌋+1 = 5, not the 6 that
// t = n−1 would give.
func TestSweepWorkloadDefaultsToPatternBound(t *testing.T) {
	sum, err := SweepWorkload(context.Background(), io.Discard, "collapse:k=2,r=3", []string{"floodmin"}, setconsensus.Oracle, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	p := sum.Protocols[0]
	if p.MaxTime != 5 {
		t.Fatalf("floodmin on collapse k=2,r=3: decided at %d, want 5 (t = k(r+1) = 8)", p.MaxTime)
	}
	// An explicit t pins the a-priori bound instead.
	sum, err = SweepWorkload(context.Background(), io.Discard, "collapse:k=2,r=3", []string{"floodmin"}, setconsensus.Oracle, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Protocols[0].MaxTime; got != 6 {
		t.Fatalf("floodmin with explicit t=10: decided at %d, want 6", got)
	}
}

func TestSweepWorkloadRendersTable(t *testing.T) {
	var b strings.Builder
	if _, err := SweepWorkload(context.Background(), &b, "silentrounds:k=1,r=1..2", []string{"optmin"}, setconsensus.Oracle, 1, -1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "optmin") || !strings.Contains(out, "silentrounds") {
		t.Errorf("table output missing expected content:\n%s", out)
	}
}

// TestCoordinateWorkloadMatchesSweep pins the coordinated sweep's user
// contract: for the same reference, `-coordinate` renders the exact
// table the single-process sweep renders.
func TestCoordinateWorkloadMatchesSweep(t *testing.T) {
	const ref = "space:n=3,t=1,r=2,v=0..1"
	refs := []string{"optmin", "floodmin"}

	var mono strings.Builder
	if _, err := SweepWorkload(context.Background(), &mono, ref, refs, setconsensus.Oracle, 1, -1); err != nil {
		t.Fatal(err)
	}
	var coordOut strings.Builder
	if _, err := CoordinateWorkload(context.Background(), &coordOut, ref, refs, setconsensus.Oracle, 1, -1,
		CoordinateOpts{Workers: 2, RangeSize: 7}); err != nil {
		t.Fatal(err)
	}
	if mono.String() != coordOut.String() {
		t.Errorf("coordinated table differs from monolithic:\n--- coordinated ---\n%s--- monolithic ---\n%s",
			coordOut.String(), mono.String())
	}
}

// TestCoordinateWorkloadNeedsWorkers: zero workers and no joined
// servers is a bad invocation, not a hang.
func TestCoordinateWorkloadNeedsWorkers(t *testing.T) {
	if _, err := CoordinateWorkload(context.Background(), io.Discard, "space:n=3,t=1,r=2,v=0..1",
		[]string{"optmin"}, setconsensus.Oracle, 1, -1, CoordinateOpts{}); err == nil {
		t.Fatal("coordinated sweep with no workers succeeded")
	}
}
