package cli

import (
	"context"
	"io"
	"strings"
	"testing"

	setconsensus "setconsensus"
)

func TestSplitList(t *testing.T) {
	got := SplitList(" optmin, upmin ,,floodmin ")
	if len(got) != 3 || got[0] != "optmin" || got[1] != "upmin" || got[2] != "floodmin" {
		t.Fatalf("SplitList = %v", got)
	}
	if SplitList("") != nil {
		t.Error("empty list must be nil")
	}
}

// TestSweepWorkloadDefaultsToPatternBound pins the parity with the
// removed -collapse-k/-collapse-r flags: those derived t = CollapseT =
// k(r+1) per adversary, and the workload default must reproduce it —
// FloodMin on collapse k=2,r=3 decides at ⌊t/k⌋+1 = 5, not the 6 that
// t = n−1 would give.
func TestSweepWorkloadDefaultsToPatternBound(t *testing.T) {
	sum, err := SweepWorkload(context.Background(), io.Discard, "collapse:k=2,r=3", []string{"floodmin"}, setconsensus.Oracle, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	p := sum.Protocols[0]
	if p.MaxTime != 5 {
		t.Fatalf("floodmin on collapse k=2,r=3: decided at %d, want 5 (t = k(r+1) = 8)", p.MaxTime)
	}
	// An explicit t pins the a-priori bound instead.
	sum, err = SweepWorkload(context.Background(), io.Discard, "collapse:k=2,r=3", []string{"floodmin"}, setconsensus.Oracle, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Protocols[0].MaxTime; got != 6 {
		t.Fatalf("floodmin with explicit t=10: decided at %d, want 6", got)
	}
}

func TestSweepWorkloadRendersTable(t *testing.T) {
	var b strings.Builder
	if _, err := SweepWorkload(context.Background(), &b, "silentrounds:k=1,r=1..2", []string{"optmin"}, setconsensus.Oracle, 1, -1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "optmin") || !strings.Contains(out, "silentrounds") {
		t.Errorf("table output missing expected content:\n%s", out)
	}
}
