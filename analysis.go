package setconsensus

import (
	"context"
	"fmt"

	"setconsensus/internal/enum"
	"setconsensus/internal/experiments"
	"setconsensus/internal/govern"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/unbeat"
)

// This file is the analysis side of the Engine facade: where Sweep runs
// protocols over workloads, Analyze runs the paper's unbeatability
// machinery — the bounded deviation search and the Lemma 1/2/3
// certificate constructions — as named, parameterized analysis families
// on the same engine plumbing. Run compilation goes through the pooled
// Backend.RunInto path with a recycled knowledge Builder arena, candidate
// testing and certificate construction shard across the configured
// worker pool, progress streams like SweepSourceStream, and the outcome
// is a structured AnalysisReport whose fields are identical at any
// parallelism.

// AnalysisRun executes one parsed analysis on an engine. The progress
// callback may be nil; when set, it receives serialized, throttled stage
// snapshots.
type AnalysisRun func(ctx context.Context, e *Engine, progress func(AnalysisProgress)) (*AnalysisReport, error)

// AnalysisSpec describes one named, parameterized analysis family,
// registered and referenced exactly like workloads: "name" or
// "name:key=val,key=val". Family names may contain colons
// ("search:optmin"); references resolve by longest registered prefix.
type AnalysisSpec struct {
	// Name is the canonical lookup key, e.g. "search:optmin".
	Name string
	// Aliases are additional lookup keys.
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// Params documents the accepted keys. Purely descriptive; parsing
	// happens in New.
	Params string
	// New builds the runnable analysis for one parsed argument set.
	New func(args WorkloadArgs) (AnalysisRun, error)
}

// AnalysisRegistry maps analysis family names to specs. The zero value
// is not usable; call NewAnalysisRegistry. All methods are safe for
// concurrent use.
type AnalysisRegistry struct {
	reg *specRegistry[*AnalysisSpec]
}

// NewAnalysisRegistry returns an empty analysis registry.
func NewAnalysisRegistry() *AnalysisRegistry {
	return &AnalysisRegistry{reg: newSpecRegistry[*AnalysisSpec]("analyses")}
}

// Register adds a spec. It fails on empty or duplicate names (including
// alias collisions) and on specs missing a constructor.
func (r *AnalysisRegistry) Register(spec AnalysisSpec) error {
	if spec.New == nil {
		return fmt.Errorf("analyses: %s: nil constructor", spec.Name)
	}
	s := spec
	return r.reg.register(spec.Name, spec.Aliases, &s)
}

// MustRegister is Register for static registrations.
func (r *AnalysisRegistry) MustRegister(spec AnalysisSpec) {
	if err := r.Register(spec); err != nil {
		panic(err)
	}
}

// Lookup resolves an analysis family name or alias, case-insensitively.
func (r *AnalysisRegistry) Lookup(name string) (*AnalysisSpec, error) {
	return r.reg.lookup(name)
}

// Names returns the canonical family names in registration order.
func (r *AnalysisRegistry) Names() []string { return r.reg.names() }

// Specs returns all registered specs in registration order.
func (r *AnalysisRegistry) Specs() []*AnalysisSpec { return r.reg.all() }

// Parse resolves an analysis reference — "name" or "name:key=val,..." —
// into a runnable analysis.
func (r *AnalysisRegistry) Parse(ref string) (AnalysisRun, error) {
	spec, argStr, err := r.reg.splitRef(ref)
	if err != nil {
		return nil, err
	}
	vals, err := parseArgPairs("analysis", ref, argStr)
	if err != nil {
		return nil, err
	}
	return spec.New(newWorkloadArgs("analysis", ref, vals))
}

// Analyze resolves ref in the engine's analysis registry and runs it to
// completion: compile on the pooled run path, then candidate testing or
// certificate construction sharded over the engine's worker pool. The
// report is deterministic in the analysis configuration alone —
// Parallelism changes wall-clock, never a field.
func (e *Engine) Analyze(ctx context.Context, ref string) (*AnalysisReport, error) {
	return e.AnalyzeStream(ctx, ref, nil)
}

// AnalyzeStream is Analyze with streaming progress delivery, the analysis
// analogue of SweepSourceStream: progress is called with throttled stage
// snapshots ("compile", "width-1", "width-2", "certify"), serialized
// from at most one goroutine at a time. Cancelling ctx aborts the
// analysis promptly at any stage.
func (e *Engine) AnalyzeStream(ctx context.Context, ref string, progress func(AnalysisProgress)) (*AnalysisReport, error) {
	if e.err != nil {
		return nil, e.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run, err := e.analyses.Parse(ref)
	if err != nil {
		return nil, err
	}
	return run(ctx, e, progress)
}

// AnalysisTable renders an AnalysisReport in the experiment table
// format, like SummaryTable for sweep summaries.
func AnalysisTable(r *AnalysisReport) *ExperimentTable { return experiments.AnalysisTable(r) }

// searchConfig is the parsed parameter set of a deviation-search family.
type searchConfig struct {
	n, t, k  int // k = 0 means the engine's degree
	r        int // 0 means t+1
	vLo, vHi int // vHi < vLo means 0..k
	width    int
	uniform  bool
}

// searchAnalysisSpec builds the spec of one deviation-search family over
// a named base protocol.
func searchAnalysisSpec(name string, aliases []string, baseRef string, uniform bool) AnalysisSpec {
	return AnalysisSpec{
		Name:    name,
		Aliases: aliases,
		Summary: fmt.Sprintf("bounded deviation search: no ≤width-view early-decision rule beats %s on an exhaustive space", baseRef),
		Params:  "n=3 t=2 k=<engine degree> r=t+1 v=0..k width=2 uniform=" + fmt.Sprint(uniform),
		New: func(args WorkloadArgs) (AnalysisRun, error) {
			var cfg searchConfig
			var err error
			if cfg.n, err = args.Int("n", 3); err != nil {
				return nil, err
			}
			if cfg.t, err = args.Int("t", 2); err != nil {
				return nil, err
			}
			if cfg.k, err = args.Int("k", 0); err != nil {
				return nil, err
			}
			if cfg.r, err = args.Int("r", 0); err != nil {
				return nil, err
			}
			if cfg.vLo, cfg.vHi, err = args.Range("v", 0, -1); err != nil {
				return nil, err
			}
			if cfg.width, err = args.Int("width", 2); err != nil {
				return nil, err
			}
			if cfg.uniform, err = args.Bool("uniform", uniform); err != nil {
				return nil, err
			}
			if err := args.Finish(); err != nil {
				return nil, err
			}
			return func(ctx context.Context, e *Engine, progress func(AnalysisProgress)) (*AnalysisReport, error) {
				return e.runSearchAnalysis(ctx, name, baseRef, cfg, progress)
			}, nil
		},
	}
}

// runSearchAnalysis executes one deviation-search family end to end:
// compile every run of the exhaustive space through the pooled
// Backend.RunInto / Builder revive path, then shard the candidate tests
// across the worker pool.
func (e *Engine) runSearchAnalysis(ctx context.Context, family, baseRef string, cfg searchConfig, progress func(AnalysisProgress)) (rep *AnalysisReport, err error) {
	if e.backend.Kind() != Oracle {
		return nil, fmt.Errorf("engine: analysis %q simulates full-information deviation rules and requires the Oracle backend (have %s)",
			family, e.backend.Kind())
	}
	k := cfg.k
	if k == 0 {
		k = e.params.K
	}
	r := cfg.r
	if r == 0 {
		r = cfg.t + 1
	}
	vLo, vHi := cfg.vLo, cfg.vHi
	if vHi < vLo {
		vLo, vHi = 0, k
	}
	p := Params{N: cfg.n, T: cfg.t, K: k}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	values := make([]int, 0, vHi-vLo+1)
	for v := vLo; v <= vHi; v++ {
		values = append(values, v)
	}
	space := enum.Space{N: cfg.n, T: cfg.t, MaxRound: r, Values: values}
	comp, err := unbeat.NewCompiler(unbeat.SearchParams{
		Space: space, K: k, T: cfg.t, Uniform: cfg.uniform, Width: cfg.width,
	})
	if err != nil {
		return nil, err
	}
	spec, err := e.reg.Lookup(baseRef)
	if err != nil {
		return nil, err
	}
	ent := e.protoFor(baseRef, spec, p)
	if ent.err != nil {
		return nil, ent.err
	}

	// Compile stage: one pooled run per adversary, graphs rebuilt in the
	// worker kit's recycled Builder arena (same-pattern blocks revive)
	// and released as soon as the run is interned. The space size is
	// unknown up front, so snapshots carry Total 0 until Finish closes
	// the stage.
	sink := unbeat.NewProgressSink(progress)
	sink.Stage("compile", 0)
	kit := e.getKit(true)
	// Panic isolation for the compile stage: protocol code runs here in
	// the calling goroutine, so a panic is converted into a typed
	// analysis failure and the kit — possibly mid-mutation — is
	// discarded instead of repooled.
	defer func() {
		if pe := govern.Recovered("engine: analysis compile", recover()); pe != nil {
			rep, err = nil, pe
			e.discardKit(kit)
			return
		}
		e.putKit(kit)
	}()
	req := &kit.buf.req
	var aerr error
	err = space.ForEach(func(adv *model.Adversary) bool {
		if aerr = ctx.Err(); aerr != nil {
			return false
		}
		g := kit.builder.Build(adv, comp.Horizon())
		*req = RunRequest{
			Ref: baseRef, Spec: spec,
			Proto: ent.proto, ProtoErr: ent.err, Name: ent.name,
			Params: p, Adv: adv, Graph: g,
		}
		res, err := e.backend.RunInto(ctx, req, kit.buf)
		if err != nil {
			aerr = err
			g.Release()
			return false
		}
		comp.Add(adv, g, res.Decisions)
		g.Release()
		sink.Bump()
		return true
	})
	if aerr != nil {
		return nil, aerr
	}
	if err != nil {
		return nil, err
	}
	sink.Finish()

	srep, err := comp.Compiled().Search(ctx, unbeat.SearchOptions{
		Parallelism: e.params.Parallelism,
		Progress:    progress,
	})
	if err != nil {
		return nil, err
	}
	return &AnalysisReport{
		Family: family, Workload: space.Label(),
		N: cfg.n, T: cfg.t, K: k,
		Search: srep,
	}, nil
}

// certNode is one graph node a certificate family examines.
type certNode struct {
	proc model.Proc
	time int
}

// certAcc is one worker's certificate accumulator, merged once when its
// shard is drained.
type certAcc struct {
	certified, orders int
}

// runCertAnalysis shards the eligible nodes of a certificate family
// across the worker pool. certify builds and checks one certificate,
// returning the orderings it validated; any error aborts the analysis
// (a failed certificate is a theorem violation, not a statistic).
func (e *Engine) runCertAnalysis(ctx context.Context, nodes []certNode, progress func(AnalysisProgress),
	certify func(ctx context.Context, node certNode) (orders int, err error)) (certified, orders int, err error) {

	workers := e.params.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(nodes) && len(nodes) > 0 {
		workers = len(nodes)
	}
	accs := make([]certAcc, workers)
	sink := unbeat.NewProgressSink(progress)
	sink.Stage("certify", len(nodes))
	err = unbeat.Shards(ctx, workers, func(ctx context.Context, w int) error {
		acc := &accs[w]
		for idx := w; idx < len(nodes); idx += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			ord, err := certify(ctx, nodes[idx])
			if err != nil {
				return err
			}
			acc.certified++
			acc.orders += ord
			sink.Bump()
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, acc := range accs {
		certified += acc.certified
		orders += acc.orders
	}
	return certified, orders, nil
}

// certConfig is the parsed parameter set of a certificate family over
// the Fig. 2 hidden-chains run.
type certConfig struct {
	k     int // chain count / degree; 0 means the engine's degree
	m     int // chain length / horizon
	extra int // extra correct processes
}

func parseCertConfig(args WorkloadArgs, chainKey string) (certConfig, error) {
	var cfg certConfig
	var err error
	if cfg.k, err = args.Int(chainKey, 0); err != nil {
		return cfg, err
	}
	if cfg.m, err = args.Int("m", 2); err != nil {
		return cfg, err
	}
	if cfg.extra, err = args.Int("extra", 2); err != nil {
		return cfg, err
	}
	return cfg, args.Finish()
}

// hiddenChainsRun materializes the Fig. 2 run a certificate family
// works in: c chains of length m, all starting high.
func hiddenChainsRun(cfg certConfig, c int) (*model.Adversary, *knowledge.Graph, string, error) {
	n := 1 + c*(cfg.m+1) + cfg.extra
	values := make([]model.Value, c)
	for b := range values {
		values[b] = c
	}
	adv, err := model.HiddenChains(n, c, cfg.m, values, c)
	if err != nil {
		return nil, nil, "", err
	}
	label := fmt.Sprintf("hiddenchains:c=%d,m=%d,extra=%d", c, cfg.m, cfg.extra)
	return adv, knowledge.New(adv, cfg.m), label, nil
}

// forcedAnalysisSpec is the "forced" family: on the Fig. 2 run, every
// node at which Optmin[k] is undecided (low-free with hidden capacity
// ≥ k) must carry a complete Lemma 3 cannot-decide certificate, whose
// forcing recursions validate every change-run ordering of the Lemma 1
// proof.
func forcedAnalysisSpec() AnalysisSpec {
	return AnalysisSpec{
		Name:    "forced",
		Summary: "Lemma 1/3 forcing certificates for every Optmin-undecided node of the Fig. 2 run",
		Params:  "k=<engine degree> m=2 extra=2",
		New: func(args WorkloadArgs) (AnalysisRun, error) {
			cfg, err := parseCertConfig(args, "k")
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context, e *Engine, progress func(AnalysisProgress)) (*AnalysisReport, error) {
				k := cfg.k
				if k == 0 {
					k = e.params.K
				}
				adv, g, label, err := hiddenChainsRun(cfg, k)
				if err != nil {
					return nil, err
				}
				var nodes []certNode
				for i := 0; i < adv.N(); i++ {
					for m := 0; m <= cfg.m; m++ {
						if !adv.Pattern.Active(i, m) {
							continue
						}
						if g.Min(i, m) < k || g.HiddenCapacity(i, m) < k {
							continue // Optmin decides here
						}
						nodes = append(nodes, certNode{proc: i, time: m})
					}
				}
				certified, orders, err := e.runCertAnalysis(ctx, nodes, progress,
					func(ctx context.Context, node certNode) (int, error) {
						cert, err := unbeat.CannotDecide(ctx, g, node.proc, node.time, k)
						if err != nil {
							return 0, fmt.Errorf("engine: forced: ⟨%d,%d⟩ uncertified: %w", node.proc, node.time, err)
						}
						return cert.TotalOrders(), nil
					})
				if err != nil {
					return nil, err
				}
				return &AnalysisReport{
					Family: "forced", Workload: label,
					N: adv.N(), T: adv.Pattern.NumFailures(), K: k,
					Nodes: len(nodes), Certified: certified, Orders: orders,
				}, nil
			}, nil
		},
	}
}

// lemma2AnalysisSpec is the "lemma2" family: on the Fig. 2 run, every
// active node with hidden capacity ≥ c must admit the Lemma 2 hidden-run
// construction — an indistinguishable run carrying c arbitrary values —
// and pass every side condition of its verification.
func lemma2AnalysisSpec() AnalysisSpec {
	return AnalysisSpec{
		Name:    "lemma2",
		Summary: "Lemma 2 hidden-run construction + verification at every high-capacity node of the Fig. 2 run",
		Params:  "c=<engine degree> m=2 extra=2",
		New: func(args WorkloadArgs) (AnalysisRun, error) {
			cfg, err := parseCertConfig(args, "c")
			if err != nil {
				return nil, err
			}
			return func(ctx context.Context, e *Engine, progress func(AnalysisProgress)) (*AnalysisReport, error) {
				c := cfg.k
				if c == 0 {
					c = e.params.K
				}
				adv, g, label, err := hiddenChainsRun(cfg, c)
				if err != nil {
					return nil, err
				}
				chainValues := make([]model.Value, c)
				for b := range chainValues {
					chainValues[b] = b
				}
				var nodes []certNode
				for i := 0; i < adv.N(); i++ {
					for m := 0; m <= cfg.m; m++ {
						if !adv.Pattern.Active(i, m) || g.HiddenCapacity(i, m) < c {
							continue
						}
						nodes = append(nodes, certNode{proc: i, time: m})
					}
				}
				certified, _, err := e.runCertAnalysis(ctx, nodes, progress,
					func(ctx context.Context, node certNode) (int, error) {
						h, err := unbeat.HiddenRun(g, node.proc, node.time, chainValues)
						if err != nil {
							return 0, fmt.Errorf("engine: lemma2: ⟨%d,%d⟩ construction: %w", node.proc, node.time, err)
						}
						if _, err := h.Verify(ctx, g); err != nil {
							return 0, fmt.Errorf("engine: lemma2: ⟨%d,%d⟩ verification: %w", node.proc, node.time, err)
						}
						return 0, nil
					})
				if err != nil {
					return nil, err
				}
				return &AnalysisReport{
					Family: "lemma2", Workload: label,
					N: adv.N(), T: adv.Pattern.NumFailures(), K: c,
					Nodes: len(nodes), Certified: certified,
				}, nil
			}, nil
		},
	}
}

// defaultAnalyses wires the built-in analysis families.
var defaultAnalyses = func() *AnalysisRegistry {
	r := NewAnalysisRegistry()
	r.MustRegister(searchAnalysisSpec("search:optmin", []string{"search"}, "optmin", false))
	r.MustRegister(searchAnalysisSpec("search:upmin", nil, "upmin", true))
	r.MustRegister(lemma2AnalysisSpec())
	r.MustRegister(forcedAnalysisSpec())
	return r
}()

// DefaultAnalyses returns the registry holding every built-in analysis
// family: the deviation searches ("search:optmin", "search:upmin") and
// the certificate constructions ("lemma2", "forced"). Callers may
// Register additional analyses on it.
func DefaultAnalyses() *AnalysisRegistry { return defaultAnalyses }

// ParseAnalysis resolves an analysis reference in the default registry,
// e.g. "search:optmin:n=3,t=2,width=2" or "forced:k=3".
func ParseAnalysis(ref string) (AnalysisRun, error) { return defaultAnalyses.Parse(ref) }

// Analyses returns the canonical family names in the default registry.
func Analyses() []string { return defaultAnalyses.Names() }
