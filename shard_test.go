package setconsensus_test

import (
	"context"
	"iter"
	"math/rand"
	"testing"

	setconsensus "setconsensus"
)

// requireSummariesEqual asserts two summaries agree on every count the
// aggregation tracks: runs, undecided, violations, time extremes and
// sums, full decision-time histograms, and wire-bit totals.
func requireSummariesEqual(t *testing.T, got, want *setconsensus.Summary, label string) {
	t.Helper()
	if got.Runs() != want.Runs() {
		t.Fatalf("%s: %d runs, want %d", label, got.Runs(), want.Runs())
	}
	if len(got.Protocols) != len(want.Protocols) {
		t.Fatalf("%s: %d protocol rows, want %d", label, len(got.Protocols), len(want.Protocols))
	}
	for i, p := range got.Protocols {
		w := want.Protocols[i]
		if p.Ref != w.Ref || p.Runs != w.Runs || p.Undecided != w.Undecided ||
			p.Violations != w.Violations || p.MaxTime != w.MaxTime || p.SumTime != w.SumTime ||
			p.TotalBits != w.TotalBits || p.MaxPair != w.MaxPair {
			t.Errorf("%s: protocol %s diverged: got %+v, want %+v", label, p.Ref, p, w)
		}
		if len(p.TimeHist) != len(w.TimeHist) {
			t.Errorf("%s: protocol %s histogram sizes %d vs %d", label, p.Ref, len(p.TimeHist), len(w.TimeHist))
		}
		for tm, n := range w.TimeHist {
			if p.TimeHist[tm] != n {
				t.Errorf("%s: protocol %s hist[%d] = %d, want %d", label, p.Ref, tm, p.TimeHist[tm], n)
			}
		}
	}
}

// sequentialSummary folds src through the single-aggregator path: one
// shared Aggregator fed run by run from the streaming sweep — the
// pre-sharding semantics the sharded path must reproduce exactly.
func sequentialSummary(t *testing.T, eng *setconsensus.Engine, refs []string, src setconsensus.Source) *setconsensus.Summary {
	t.Helper()
	a, err := eng.NewAggregator(src.Label(), refs)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SweepSourceStream(context.Background(), refs, src, a.Add); err != nil {
		t.Fatal(err)
	}
	return a.Summary()
}

// TestShardedSummaryEquivalence is the sharded-aggregation acceptance
// test: over randomized seeded workloads — exhaustive spaces and random
// sources — the sharded-and-merged SweepSource summary must be
// identical (histograms, violation counts, bit totals) to the
// sequential single-aggregator fold, at parallelism 1 and at a
// parallelism that forces multiple shards. Run under -race this also
// pins the merge-once synchronization contract.
func TestShardedSummaryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	refs := []string{"optmin", "upmin", "floodmin"}
	for trial := 0; trial < 4; trial++ {
		space := setconsensus.Space{
			N:        3,
			T:        1 + rng.Intn(2),
			MaxRound: 1 + rng.Intn(2),
			Values:   []int{0, 1},
		}
		spaceSrc, err := setconsensus.SpaceSource(space)
		if err != nil {
			t.Fatal(err)
		}
		randSrc, err := setconsensus.RandomSource(rng.Int63(), 64+rng.Intn(64), setconsensus.RandomParams{
			N: 4, T: 2, MaxValue: 2, MaxRound: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []setconsensus.Source{spaceSrc, randSrc} {
			sequential := sequentialSummary(t, setconsensus.New(
				setconsensus.WithCrashBound(2),
				setconsensus.WithParallelism(1),
			), refs, src)
			for _, workers := range []int{1, 4} {
				for _, cache := range []int{0, 64} {
					eng := setconsensus.New(
						setconsensus.WithCrashBound(2),
						setconsensus.WithParallelism(workers),
						setconsensus.WithGraphCache(cache),
					)
					sharded, err := eng.SweepSource(context.Background(), refs, src)
					if err != nil {
						t.Fatal(err)
					}
					requireSummariesEqual(t, sharded, sequential, src.Label())
				}
			}
		}
	}
}

// TestShardedWireBitsEquivalence repeats the comparison on the wire
// backend, whose runs carry bit accounting through the pooled path.
func TestShardedWireBitsEquivalence(t *testing.T) {
	refs := []string{"optmin", "upmin"}
	src, err := setconsensus.RandomSource(7, 48, setconsensus.RandomParams{N: 4, T: 2, MaxValue: 1, MaxRound: 2})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(workers int) *setconsensus.Engine {
		return setconsensus.New(
			setconsensus.WithBackend(setconsensus.Wire),
			setconsensus.WithCrashBound(2),
			setconsensus.WithDegree(2),
			setconsensus.WithParallelism(workers),
		)
	}
	sequential := sequentialSummary(t, mk(1), refs, src)
	sharded, err := mk(4).SweepSource(context.Background(), refs, src)
	if err != nil {
		t.Fatal(err)
	}
	requireSummariesEqual(t, sharded, sequential, src.Label())
	if sharded.Protocols[0].TotalBits == 0 {
		t.Fatal("wire sweep recorded no bits through the pooled path")
	}
}

// lyingSource claims a known count that disagrees with what it yields —
// the degenerate Source contract violation the sweep must survive.
type lyingSource struct {
	claimed int
	advs    []*setconsensus.Adversary
}

func (s *lyingSource) Label() string      { return "liar" }
func (s *lyingSource) Count() (int, bool) { return s.claimed, true }
func (s *lyingSource) Seq() iter.Seq[*setconsensus.Adversary] {
	return func(yield func(*setconsensus.Adversary) bool) {
		for _, a := range s.advs {
			if !yield(a) {
				return
			}
		}
	}
}

// TestSweepSourceLyingCount pins the degenerate-count behavior: a source
// claiming count 0 (or a negative count) while yielding adversaries
// must neither deadlock nor drop runs — every yielded adversary is
// swept. The old early-return treated "known 0" as empty and silently
// discarded the stream.
func TestSweepSourceLyingCount(t *testing.T) {
	advs := []*setconsensus.Adversary{
		setconsensus.NewBuilder(3, 0).MustBuild(),
		setconsensus.NewBuilder(3, 1).MustBuild(),
		setconsensus.NewBuilder(3, 0).CrashSilent(1, 1).MustBuild(),
	}
	for _, claimed := range []int{0, -5, 1} {
		eng := setconsensus.New(setconsensus.WithParallelism(2))
		sum, err := eng.SweepSource(context.Background(), []string{"optmin"}, &lyingSource{claimed: claimed, advs: advs})
		if err != nil {
			t.Fatalf("claimed=%d: %v", claimed, err)
		}
		if sum.Adversaries() != len(advs) {
			t.Fatalf("claimed=%d: swept %d adversaries, want %d", claimed, sum.Adversaries(), len(advs))
		}
	}
}
