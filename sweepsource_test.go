package setconsensus_test

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	setconsensus "setconsensus"
)

// TestSweepSourceGoldenVsSlice is the acceptance comparison: on a small
// space, the streamed SweepSource must aggregate exactly the decisions
// the slice-based Sweep produces.
func TestSweepSourceGoldenVsSlice(t *testing.T) {
	space := setconsensus.Space{N: 3, T: 2, MaxRound: 2, Values: []int{0, 1}}
	refs := []string{"optmin", "upmin", "floodmin"}
	eng := setconsensus.New(setconsensus.WithCrashBound(2), setconsensus.WithDegree(1))

	advs, err := space.Adversaries()
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.Sweep(context.Background(), refs, advs)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := eng.NewAggregator("golden", refs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		golden.Add(r)
	}

	src, err := setconsensus.SpaceSource(space)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.SweepSource(context.Background(), refs, src)
	if err != nil {
		t.Fatal(err)
	}

	want := golden.Summary()
	if sum.Runs() != want.Runs() || sum.Runs() != len(refs)*len(advs) {
		t.Fatalf("runs: source %d, slice %d, want %d", sum.Runs(), want.Runs(), len(refs)*len(advs))
	}
	for i, p := range sum.Protocols {
		w := want.Protocols[i]
		if p.Ref != w.Ref || p.Runs != w.Runs || p.Undecided != w.Undecided ||
			p.Violations != w.Violations || p.MaxTime != w.MaxTime || p.SumTime != w.SumTime {
			t.Errorf("protocol %s: source %+v, slice %+v", p.Ref, p, w)
		}
		if len(p.TimeHist) != len(w.TimeHist) {
			t.Errorf("protocol %s: histogram sizes differ", p.Ref)
		}
		for tm, n := range w.TimeHist {
			if p.TimeHist[tm] != n {
				t.Errorf("protocol %s: hist[%d] = %d, want %d", p.Ref, tm, p.TimeHist[tm], n)
			}
		}
		if p.Violations != 0 {
			t.Errorf("protocol %s: %d task violations on the exhaustive space", p.Ref, p.Violations)
		}
	}

	// The streaming variant emits exactly the Sweep result set.
	var want2, got []string
	for _, r := range results {
		want2 = append(want2, r.String())
	}
	if err := eng.SweepSourceStream(context.Background(), refs, src, func(r *setconsensus.Result) {
		got = append(got, r.String())
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want2)
	sort.Strings(got)
	if len(got) != len(want2) {
		t.Fatalf("stream emitted %d results, want %d", len(got), len(want2))
	}
	for i := range got {
		if got[i] != want2[i] {
			t.Fatalf("stream result set differs at %d:\n%s\n%s", i, got[i], want2[i])
		}
	}
}

// TestSweepSourceStreamsLargeSpace is the acceptance streaming check: an
// exhaustive space of ≥ 10k canonical adversaries sweeps straight off
// the iterator — no materialized slice anywhere in the path — and every
// run lands in the summary.
func TestSweepSourceStreamsLargeSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("large-space sweep skipped in -short mode")
	}
	space := setconsensus.Space{N: 4, T: 2, MaxRound: 2, Values: []int{0, 1}}
	count := 0
	for range space.All() {
		count++
	}
	if count < 10000 {
		t.Fatalf("space holds %d canonical adversaries, need ≥ 10000", count)
	}
	src, err := setconsensus.SpaceSource(space)
	if err != nil {
		t.Fatal(err)
	}
	eng := setconsensus.New(setconsensus.WithCrashBound(2), setconsensus.WithDegree(1))
	sum, err := eng.SweepSource(context.Background(), []string{"optmin"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Adversaries() != count {
		t.Fatalf("summary saw %d adversaries, want %d", sum.Adversaries(), count)
	}
	p := sum.Protocols[0]
	if p.Undecided != 0 || p.Violations != 0 {
		t.Fatalf("optmin over the space: %d undecided, %d violations", p.Undecided, p.Violations)
	}
	t.Logf("streamed %d canonical adversaries: hist %s", count, p.HistString())
}

// TestSweepSourceCancellation cancels after the first emitted result;
// the stream must abort promptly with ctx.Err().
func TestSweepSourceCancellation(t *testing.T) {
	space := setconsensus.Space{N: 4, T: 2, MaxRound: 2, Values: []int{0, 1}}
	src, err := setconsensus.SpaceSource(space)
	if err != nil {
		t.Fatal(err)
	}
	eng := setconsensus.New(
		setconsensus.WithCrashBound(2),
		setconsensus.WithParallelism(2),
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	err = eng.SweepSourceStream(ctx, []string{"optmin", "upmin"}, src, func(*setconsensus.Result) {
		emitted++
		if emitted == 1 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Prompt abort: nothing beyond the in-flight chunks may finish.
	if emitted > 2*64*2 {
		t.Fatalf("cancellation did not stop the stream: %d results", emitted)
	}
	if _, err := eng.SweepSource(ctx, []string{"optmin"}, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepSource on a dead context: %v", err)
	}
}

func TestSweepSourceInputErrors(t *testing.T) {
	eng := setconsensus.New()
	ctx := context.Background()
	src := setconsensus.SliceSource(setconsensus.NewBuilder(3, 0).MustBuild())
	if _, err := eng.SweepSource(ctx, nil, src); err == nil {
		t.Error("no protocols must error")
	}
	if _, err := eng.SweepSource(ctx, []string{"optmin"}, nil); err == nil {
		t.Error("nil source must error")
	}
	if err := eng.SweepSourceStream(ctx, []string{"optmin"}, nil, func(*setconsensus.Result) {}); err == nil {
		t.Error("nil source must error on the stream variant")
	}
	if _, err := eng.SweepSource(ctx, []string{"unknown"}, src); err == nil {
		t.Error("unknown protocol must error")
	}
	// Duplicate refs would fold two runs per adversary into one summary
	// row; aggregated sweeps reject them up front.
	if _, err := eng.SweepSource(ctx, []string{"optmin", "optmin"}, src); err == nil {
		t.Error("duplicate refs must error on the aggregated path")
	}
	// A limit clamped below zero is an empty workload, not a hang.
	sum0, err := eng.SweepSource(ctx, []string{"optmin"}, setconsensus.LimitSource(src, -5))
	if err != nil {
		t.Fatal(err)
	}
	if sum0.Runs() != 0 {
		t.Fatalf("negative limit produced %d runs", sum0.Runs())
	}
	// An empty source is a legitimate workload: zero runs, no error.
	sum, err := eng.SweepSource(ctx, []string{"optmin"}, setconsensus.SliceSource())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs() != 0 {
		t.Fatalf("empty source produced %d runs", sum.Runs())
	}
}

func TestAggregatorTracksWireBits(t *testing.T) {
	adv, tb := collapseAdv(t, 2, 3)
	eng := setconsensus.New(
		setconsensus.WithBackend(setconsensus.Wire),
		setconsensus.WithCrashBound(tb),
		setconsensus.WithDegree(2),
	)
	sum, err := eng.SweepSource(context.Background(), []string{"optmin", "upmin"}, setconsensus.SliceSource(adv))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sum.Protocols {
		if p.TotalBits == 0 || p.MaxPair == 0 {
			t.Errorf("%s: wire sweep recorded no bits: %+v", p.Ref, p)
		}
		if p.Violations != 0 {
			t.Errorf("%s: %d violations", p.Ref, p.Violations)
		}
	}
	tbl := setconsensus.SummaryTable(sum)
	rendered := tbl.Render()
	if !strings.Contains(rendered, "total bits") || !strings.Contains(rendered, "optmin") {
		t.Errorf("summary table missing bit columns:\n%s", rendered)
	}
}

// TestSweepSourceRecycledGraphsGolden pins the graph-recycling worker
// path: SweepSource with the graph cache disabled rebuilds each shard's
// knowledge graphs in a per-worker reused arena and releases them as
// soon as their results are aggregated. The summary must be identical
// to the cached engine's, which never recycles — a stale-arena bug or a
// Result that outlives its Release would diverge here.
func TestSweepSourceRecycledGraphsGolden(t *testing.T) {
	space := setconsensus.Space{N: 3, T: 2, MaxRound: 2, Values: []int{0, 1}}
	refs := []string{"optmin", "upmin", "floodmin"}
	cached := setconsensus.New(setconsensus.WithCrashBound(2))
	recycled := setconsensus.New(setconsensus.WithCrashBound(2), setconsensus.WithGraphCache(0))

	summaries := make([]*setconsensus.Summary, 2)
	for i, eng := range []*setconsensus.Engine{cached, recycled} {
		src, err := setconsensus.SpaceSource(space)
		if err != nil {
			t.Fatal(err)
		}
		summaries[i], err = eng.SweepSource(context.Background(), refs, src)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, got := summaries[0], summaries[1]
	if got.Runs() != want.Runs() {
		t.Fatalf("recycled path ran %d, cached %d", got.Runs(), want.Runs())
	}
	for i, p := range got.Protocols {
		w := want.Protocols[i]
		if p.Ref != w.Ref || p.Runs != w.Runs || p.Undecided != w.Undecided ||
			p.Violations != w.Violations || p.MaxTime != w.MaxTime || p.SumTime != w.SumTime {
			t.Errorf("protocol %s: recycled %+v, cached %+v", p.Ref, p, w)
		}
		for tm, n := range w.TimeHist {
			if p.TimeHist[tm] != n {
				t.Errorf("protocol %s: hist[%d] = %d, want %d", p.Ref, tm, p.TimeHist[tm], n)
			}
		}
	}
}

// TestSweepSourceMetersPatches pins the delta-order sweep's build
// economics exactly: on a pattern-block-aligned sweep of an exhaustive
// space with the graph cache disabled, the engine performs one full
// knowledge-graph build per canonical failure pattern and patches every
// other adversary of the block (same pattern, one input changed). Any
// drift — a chunk boundary landing mid-block, a patch silently falling
// back to a rebuild, a revive sneaking in without a cache — breaks an
// equality here.
func TestSweepSourceMetersPatches(t *testing.T) {
	space := setconsensus.Space{N: 3, T: 2, MaxRound: 2, Values: []int{0, 1}}
	refs := []string{"upmin"}
	for _, workers := range []int{1, 4} {
		eng := setconsensus.New(
			setconsensus.WithCrashBound(2),
			setconsensus.WithGraphCache(0),
			setconsensus.WithParallelism(workers),
		)
		src, err := setconsensus.SpaceSource(space)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := eng.SweepSource(context.Background(), refs, src)
		if err != nil {
			t.Fatal(err)
		}
		total := sum.Runs() / len(refs)
		block := space.PatternBlock()
		if block <= 1 || total%block != 0 {
			t.Fatalf("space yields %d adversaries, not a multiple of block %d", total, block)
		}
		patterns := int64(total / block)
		st := eng.Stats()
		if st.GraphsRebuilt != patterns {
			t.Errorf("workers=%d: GraphsRebuilt = %d, want one per pattern (%d)",
				workers, st.GraphsRebuilt, patterns)
		}
		if st.GraphsRevived != 0 {
			t.Errorf("workers=%d: GraphsRevived = %d without a cache", workers, st.GraphsRevived)
		}
		if want := int64(total) - patterns; st.GraphsPatched != want {
			t.Errorf("workers=%d: GraphsPatched = %d, want total-patterns = %d",
				workers, st.GraphsPatched, want)
		}
	}
}
