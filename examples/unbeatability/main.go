// Unbeatability: the computational content of Theorem 1. For the Fig. 2
// scenario, every node at which Optmin[k] is undecided carries a
// machine-checked Lemma 3 certificate, and a bounded protocol-space
// search over an exhaustive adversary space fails to beat Optmin.
package main

import (
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	// Part 1: certificates on the Fig. 2 hidden-chains run (k = 3).
	adv, err := setconsensus.HiddenChains(14, 3, 2, []int{3, 3, 3}, 3)
	if err != nil {
		log.Fatal(err)
	}
	g := setconsensus.NewGraph(adv, 2)
	fmt.Println("Fig. 2 run (k=3): certifying every Optmin-undecided node")
	certified := 0
	for i := 0; i < adv.N(); i++ {
		for m := 0; m <= 2; m++ {
			if !adv.Pattern.Active(i, m) {
				continue
			}
			if g.Min(i, m) < 3 || g.HiddenCapacity(i, m) < 3 {
				continue // Optmin decides here
			}
			if _, err := setconsensus.CannotDecide(g, i, m, 3); err != nil {
				log.Fatalf("⟨%d,%d⟩ uncertified: %v", i, m, err)
			}
			certified++
		}
	}
	fmt.Printf("  %d undecided nodes, all certified: no dominating protocol decides at any of them\n\n", certified)

	// Part 2: exhaustive deviation search for binary consensus, n=3. The
	// base protocol comes out of the registry by name.
	base, err := setconsensus.NewProtocol("optmin", setconsensus.Params{N: 3, T: 2, K: 1})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := setconsensus.Search(base, setconsensus.SearchParams{
		Space: setconsensus.Space{N: 3, T: 2, MaxRound: 3, Values: []int{0, 1}},
		K:     1, T: 2, Width: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deviation search over %d runs: %d deviation points, %d candidate rules tested\n",
		rep.Runs, rep.Views, rep.Candidates)
	if rep.Beaten {
		fmt.Printf("  BEATEN: %s\n", rep.Witness)
	} else {
		fmt.Println("  no candidate solves consensus while beating Opt0 — unbeatable on this model ✓")
	}
}
