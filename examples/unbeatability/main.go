// Unbeatability: the computational content of Theorem 1 on the Engine's
// analysis pipeline. The "forced" family certifies every Optmin-undecided
// node of the Fig. 2 hidden-chains run with a machine-checked Lemma 3
// certificate, and the "search:optmin" family compiles an exhaustive
// adversary space through the pooled run path and tests every bounded
// early-deviation rule across the worker pool — streaming stage progress
// like a sweep.
package main

import (
	"context"
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	ctx := context.Background()
	eng := setconsensus.New(setconsensus.WithDegree(3))

	// Part 1: certificates on the Fig. 2 hidden-chains run (k = 3).
	rep, err := eng.Analyze(ctx, "forced")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 2 run (k=3): %d Optmin-undecided nodes, %d certified, %d change orderings validated\n",
		rep.Nodes, rep.Certified, rep.Orders)
	fmt.Println("  no dominating protocol decides at any of them ✓")
	fmt.Println()

	// Part 2: exhaustive deviation search for binary consensus, n=3,
	// driven by family name with streamed stage progress.
	eng = setconsensus.New() // k defaults to 1
	lastStage := ""
	rep, err = eng.AnalyzeStream(ctx, "search:optmin:n=3,t=2,r=3,width=2",
		func(p setconsensus.AnalysisProgress) {
			if p.Stage != lastStage {
				lastStage = p.Stage
				fmt.Printf("  stage %s...\n", p.Stage)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	s := rep.Search
	fmt.Printf("deviation search over %d runs: %d deviation points, %d candidate rules tested\n",
		s.Runs, s.Views, s.Candidates)
	if s.Beaten {
		fmt.Printf("  BEATEN: %s\n", s.Witness)
	} else {
		fmt.Println("  no candidate solves consensus while beating Opt0 — unbeatable on this model ✓")
	}
	fmt.Println()
	fmt.Println(setconsensus.AnalysisTable(rep).Render())
}
