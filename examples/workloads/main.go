// Workloads: the streaming side of the API. Workloads are named and
// parameterized like protocols — "collapse:k=2,r=2..6" names the Fig. 4
// family curve, "space:..." an exhaustive canonical enumeration — and
// stream through Engine.SweepSource in constant memory, folding into a
// per-protocol Summary instead of a result slice.
package main

import (
	"context"
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	ctx := context.Background()

	// Part 1: the Fig. 4 separation as a one-liner. The workload names
	// the family; the summary's histograms show u-Pmin pinned at time 2
	// while FloodMin's decision time grows with R.
	src, err := setconsensus.ParseWorkload("collapse:k=2,r=2..6")
	if err != nil {
		log.Fatal(err)
	}
	eng := setconsensus.New(setconsensus.WithDegree(2))
	sum, err := eng.SweepSource(ctx, []string{"upmin", "floodmin"}, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(setconsensus.SummaryTable(sum).Render())

	// Part 2: an exhaustive space, streamed. The source never
	// materializes; the canonical adversary count is only known after
	// the sweep, from the summary itself.
	space, err := setconsensus.SpaceSource(setconsensus.Space{
		N: 3, T: 2, MaxRound: 2, Values: []int{0, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng1 := setconsensus.New(setconsensus.WithCrashBound(2))
	sum, err = eng1.SweepSource(ctx, []string{"optmin", "upmin"}, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive n=3 t=2 space: %d canonical adversaries, %d runs, %d violations\n",
		sum.Adversaries(), sum.Runs(), sum.Violations())
	for _, p := range sum.Protocols {
		fmt.Printf("  %-8s decision times %s\n", p.Ref, p.HistString())
	}

	// Part 3: sources compose. Bound a space to a budget, chain it after
	// a seeded random smoke workload, and stream the lot.
	random, err := setconsensus.RandomSource(7, 25, setconsensus.RandomParams{
		N: 5, T: 2, MaxValue: 1, MaxRound: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	budget := setconsensus.LimitSource(space, 100)
	mixed := setconsensus.ConcatSources(random, budget)
	sum, err = eng1.SweepSource(ctx, []string{"optmin"}, mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed workload %s: %d adversaries swept, 0 materialized slices\n",
		mixed.Label(), sum.Adversaries())
}
