// Quickstart: run the unbeatable Optmin[k] protocol on a small system
// through the Engine facade, inspect the knowledge that drives its
// decisions, and verify the task.
package main

import (
	"context"
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	// Six processes, 2-set consensus, at most three crashes. Process 0
	// holds the low value 0; process 5 crashes in round 1, delivering its
	// final message only to process 4.
	adv := setconsensus.NewBuilder(6, 2).
		Input(0, 0).
		Input(5, 1).
		CrashSendingTo(5, 1, 4).
		MustBuild()

	// The engine resolves protocols by name and defaults to the oracle
	// backend; t and k are engine-level configuration, n comes from the
	// adversary.
	eng := setconsensus.New(
		setconsensus.WithCrashBound(3),
		setconsensus.WithDegree(2),
	)
	res, err := eng.Run(context.Background(), "optmin", adv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run of %s on %s\n\n", res.Protocol, adv)
	for i := 0; i < adv.N(); i++ {
		if d := res.Decisions[i]; d != nil {
			fmt.Printf("  process %d decides %d at time %d\n", i, d.Value, d.Time)
		} else {
			fmt.Printf("  process %d crashes undecided\n", i)
		}
	}

	// Why did process 1 decide when it did? Ask the knowledge graph the
	// oracle backend consulted.
	g := res.KnowledgeGraph()
	k := res.Params.K
	fmt.Printf("\nknowledge of process 1 over time (k = %d):\n", k)
	for m := 0; m <= 2; m++ {
		fmt.Printf("  t=%d: Min=%d low=%v HC=%d\n",
			m, g.Min(1, m), g.Low(1, m, k), g.HiddenCapacity(1, m))
	}

	if err := res.Verify(setconsensus.Task{K: 2}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnonuniform 2-set consensus verified ✓")
}
