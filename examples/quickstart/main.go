// Quickstart: run the unbeatable Optmin[k] protocol on a small system,
// inspect the knowledge that drives its decisions, and verify the task.
package main

import (
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	// Six processes, 2-set consensus, at most three crashes. Process 0
	// holds the low value 0; process 5 crashes in round 1, delivering its
	// final message only to process 4.
	adv := setconsensus.NewBuilder(6, 2).
		Input(0, 0).
		Input(5, 1).
		CrashSendingTo(5, 1, 4).
		MustBuild()

	params := setconsensus.Params{N: 6, T: 3, K: 2}
	proto, err := setconsensus.NewOptmin(params)
	if err != nil {
		log.Fatal(err)
	}

	res := setconsensus.Run(proto, adv)
	fmt.Printf("run of %s on %s\n\n", proto.Name(), adv)
	for i := 0; i < adv.N(); i++ {
		if d := res.Decisions[i]; d != nil {
			fmt.Printf("  process %d decides %d at time %d\n", i, d.Value, d.Time)
		} else {
			fmt.Printf("  process %d crashes undecided\n", i)
		}
	}

	// Why did process 1 decide when it did? Ask the knowledge graph.
	g := res.Graph
	fmt.Printf("\nknowledge of process 1 over time (k = %d):\n", params.K)
	for m := 0; m <= 2; m++ {
		fmt.Printf("  t=%d: Min=%d low=%v HC=%d\n",
			m, g.Min(1, m), g.Low(1, m, params.K), g.HiddenCapacity(1, m))
	}

	if err := setconsensus.Verify(res, setconsensus.Task{K: 2}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnonuniform 2-set consensus verified ✓")
}
