// Sperner: the topological half of the unbeatability proof (Appendix
// B.1). Builds the paper's subdivision Div σ, checks Sperner's lemma on
// random colorings, and exhibits the Fig. 5 mapping: a hypothetical early
// high decision induces a Sperner coloring whose fully-colored simplex is
// a k-Agreement violation.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	setconsensus "setconsensus"
)

func main() {
	// Part 1: Div σ and Sperner's lemma for k = 1, 2, 3.
	rng := rand.New(rand.NewSource(2016))
	for k := 1; k <= 3; k++ {
		s, err := setconsensus.DivK(k)
		if err != nil {
			log.Fatal(err)
		}
		canonical, err := s.SpernerCount(s.CanonicalColoring())
		if err != nil {
			log.Fatal(err)
		}
		odd := 0
		for trial := 0; trial < 1000; trial++ {
			n, err := s.SpernerCount(s.RandomColoring(rng))
			if err != nil {
				log.Fatal(err)
			}
			if n%2 == 1 {
				odd++
			}
		}
		fmt.Printf("Div σ (k=%d): %d vertices, %d top simplices; canonical fully-colored = %d; odd in %d/1000 random colorings\n",
			k, len(s.Complex.Vertices()), len(s.Complex.Simplices(k)), canonical, odd)
	}

	// Part 2: the Fig. 5 situation for k = 2. Processes i0, i1 hold the
	// low values 0 and 1 and crash in round 1 delivering to nobody —
	// every vertex of Div σ corresponds to a process state in some run
	// where a subset of {i0, i1} reaches the j's. Under any protocol
	// dominating Optmin[2], i0's and i1's receivers decide 0 and 1; if
	// the observer (whose hidden capacity is 2) decided the high value 2,
	// the decisions would form a Sperner coloring, and the guaranteed
	// fully-colored triangle is a run deciding 3 > k values.
	fmt.Println()
	adv := setconsensus.NewBuilder(7, 2).
		Input(5, 0).Input(6, 1).
		CrashSilent(5, 1).
		CrashSilent(6, 1).
		MustBuild()
	g := setconsensus.NewGraph(adv, 1)
	fmt.Printf("observer ⟨0,1⟩: Min=%d HC=%d — high with HC ≥ k=2\n", g.Min(0, 1), g.HiddenCapacity(0, 1))
	cert, err := setconsensus.CannotDecide(context.Background(), g, 0, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 3 certificate found: the hidden witnesses are forced to decide")
	for b, fc := range cert.Forced {
		fmt.Printf("  chain %d: process %d forced to decide %d at time %d (%d change orderings checked)\n",
			b, fc.Node, fc.Value, fc.Time, fc.Orders)
	}
	fmt.Println("⟹ a decision by the observer would be a 3rd value among correct processes.")
}
