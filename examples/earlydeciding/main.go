// Early deciding: the paper's headline separation (Fig. 4). On the
// collapse family, u-Pmin[k] decides at time 2 while every known
// early-deciding protocol from the literature waits ⌊t/k⌋+1 rounds —
// a margin that grows without bound in t.
package main

import (
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	k := 3
	fmt.Printf("uniform %d-set consensus on the Fig. 4 collapse family\n\n", k)
	fmt.Println("    t   u-Pmin   FloodMin   u-EarlyCount   u-PerRound   ⌊t/k⌋+1")
	for _, r := range []int{2, 5, 9, 19, 39} {
		cp := setconsensus.CollapseParams{K: k, R: r, ExtraCorrect: k + 2}
		adv, err := setconsensus.Collapse(cp)
		if err != nil {
			log.Fatal(err)
		}
		t := setconsensus.CollapseT(cp)
		params := setconsensus.Params{N: adv.N(), T: t, K: k}

		times := map[string]int{}
		upmin, err := setconsensus.NewUPmin(params)
		if err != nil {
			log.Fatal(err)
		}
		times["u-Pmin"] = setconsensus.Run(upmin, adv).MaxCorrectDecisionTime()
		for _, kind := range []setconsensus.BaselineKind{
			setconsensus.FloodMin, setconsensus.UEarlyCount, setconsensus.UPerRound,
		} {
			b, err := setconsensus.NewBaseline(kind, params)
			if err != nil {
				log.Fatal(err)
			}
			times[kind.String()] = setconsensus.Run(b, adv).MaxCorrectDecisionTime()
		}
		fmt.Printf("  %3d   %6d   %8d   %12d   %10d   %7d\n",
			t, times["u-Pmin"], times["FloodMin"], times["u-EarlyCount"], times["u-PerRound"], t/k+1)
	}
	fmt.Println("\nevery correct process discovers k new failures per round, so the")
	fmt.Println("literature protocols cannot stop early — but the hidden capacity of")
	fmt.Println("every correct process collapses at time 2, and u-Pmin decides there.")
}
