// Early deciding: the paper's headline separation (Fig. 4). On the
// collapse family, u-Pmin[k] decides at time 2 while every known
// early-deciding protocol from the literature waits ⌊t/k⌋+1 rounds —
// a margin that grows without bound in t. Each row is one Engine.Sweep:
// all four protocols run against one adversary over a single shared
// knowledge graph.
package main

import (
	"context"
	"fmt"
	"log"

	setconsensus "setconsensus"
)

func main() {
	k := 3
	protocols := []string{"upmin", "floodmin", "u-earlycount", "u-perround"}
	fmt.Printf("uniform %d-set consensus on the Fig. 4 collapse family\n\n", k)
	fmt.Println("    t   u-Pmin   FloodMin   u-EarlyCount   u-PerRound   ⌊t/k⌋+1")
	for _, r := range []int{2, 5, 9, 19, 39} {
		cp := setconsensus.CollapseParams{K: k, R: r, ExtraCorrect: k + 2}
		adv, err := setconsensus.Collapse(cp)
		if err != nil {
			log.Fatal(err)
		}
		t := setconsensus.CollapseT(cp)

		eng := setconsensus.New(
			setconsensus.WithCrashBound(t),
			setconsensus.WithDegree(k),
		)
		results, err := eng.Sweep(context.Background(), protocols, []*setconsensus.Adversary{adv})
		if err != nil {
			log.Fatal(err)
		}
		times := make([]int, len(results))
		for i, res := range results {
			times[i] = res.MaxCorrectTime
		}
		fmt.Printf("  %3d   %6d   %8d   %12d   %10d   %7d\n",
			t, times[0], times[1], times[2], times[3], t/k+1)
	}
	fmt.Println("\nevery correct process discovers k new failures per round, so the")
	fmt.Println("literature protocols cannot stop early — but the hidden capacity of")
	fmt.Println("every correct process collapses at time 2, and u-Pmin decides there.")
}
