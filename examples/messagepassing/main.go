// Message passing: the Appendix E compact protocol on real goroutines and
// channels — one goroutine per process, a router applying the failure
// pattern, O(n log n) bits per link — cross-checked against the
// full-information oracle.
package main

import (
	"fmt"
	"log"
	"math"

	setconsensus "setconsensus"
	"setconsensus/internal/core"
	"setconsensus/internal/runtime"
	"setconsensus/internal/wire"
)

func main() {
	cp := setconsensus.CollapseParams{K: 2, R: 4, ExtraCorrect: 4}
	adv, err := setconsensus.Collapse(cp)
	if err != nil {
		log.Fatal(err)
	}
	t := setconsensus.CollapseT(cp)
	params := core.Params{N: adv.N(), T: t, K: 2}

	fmt.Printf("collapse family: n=%d, t=%d, k=2\n\n", adv.N(), t)

	// Goroutine engine.
	engRes, err := runtime.Run(wire.RuleOptmin, params, adv)
	if err != nil {
		log.Fatal(err)
	}
	// Oracle reference.
	proto, err := setconsensus.NewOptmin(setconsensus.Params(params))
	if err != nil {
		log.Fatal(err)
	}
	oracle := setconsensus.Run(proto, adv)

	fmt.Println("proc  engine    oracle")
	for i := 0; i < adv.N(); i++ {
		e, o := engRes.Decisions[i], oracle.Decisions[i]
		es, os := "⊥", "⊥"
		if e != nil {
			es = fmt.Sprintf("%d@%d", e.Value, e.Time)
		}
		if o != nil {
			os = fmt.Sprintf("%d@%d", o.Value, o.Time)
		}
		marker := "✓"
		if es != os {
			marker = "✗ MISMATCH"
		}
		fmt.Printf("%4d  %-8s  %-8s %s\n", i, es, os, marker)
	}

	// Bandwidth accounting from the deterministic wire runner.
	wres, err := setconsensus.RunWire(setconsensus.Params(params), adv)
	if err != nil {
		log.Fatal(err)
	}
	n := float64(adv.N())
	fmt.Printf("\nmax bits on any link over the whole run: %d (n·log₂n = %.0f)\n",
		wres.MaxPairBits(), n*math.Log2(n))
}
