// Message passing: one protocol, three backends. The Engine facade runs
// Optmin[k] on the full-information oracle, on real goroutines and
// channels (one per process, a router applying the failure pattern), and
// on the Appendix E compact wire protocol with O(n log n) bits per link —
// and the decision tables agree bit for bit.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	setconsensus "setconsensus"
)

func main() {
	cp := setconsensus.CollapseParams{K: 2, R: 4, ExtraCorrect: 4}
	adv, err := setconsensus.Collapse(cp)
	if err != nil {
		log.Fatal(err)
	}
	t := setconsensus.CollapseT(cp)
	fmt.Printf("collapse family: n=%d, t=%d, k=2\n\n", adv.N(), t)

	// The same name resolves in the same registry on every backend; only
	// the execution substrate changes.
	ctx := context.Background()
	results := make(map[setconsensus.BackendKind]*setconsensus.Result)
	backends := []setconsensus.BackendKind{
		setconsensus.Oracle, setconsensus.Goroutines, setconsensus.Wire,
	}
	for _, bk := range backends {
		eng := setconsensus.New(
			setconsensus.WithBackend(bk),
			setconsensus.WithCrashBound(t),
			setconsensus.WithDegree(2),
		)
		res, err := eng.Run(ctx, "optmin", adv)
		if err != nil {
			log.Fatal(err)
		}
		results[bk] = res
	}

	fmt.Println("proc  oracle    goroutines  wire")
	for i := 0; i < adv.N(); i++ {
		cells := make([]string, len(backends))
		agree := true
		for b, bk := range backends {
			if d := results[bk].Decisions[i]; d != nil {
				cells[b] = fmt.Sprintf("%d@%d", d.Value, d.Time)
			} else {
				cells[b] = "⊥"
			}
			if cells[b] != cells[0] {
				agree = false
			}
		}
		marker := "✓"
		if !agree {
			marker = "✗ MISMATCH"
		}
		fmt.Printf("%4d  %-8s  %-10s  %-8s %s\n", i, cells[0], cells[1], cells[2], marker)
	}

	// Bandwidth accounting comes back on the wire backend's result.
	bits := results[setconsensus.Wire].Bits
	n := float64(adv.N())
	fmt.Printf("\nmax bits on any link over the whole run: %d (n·log₂n = %.0f)\n",
		bits.MaxPair, n*math.Log2(n))
}
