package setconsensus

import (
	"context"

	"setconsensus/internal/agg"
	"setconsensus/internal/baseline"
	"setconsensus/internal/check"
	"setconsensus/internal/core"
	"setconsensus/internal/enum"
	"setconsensus/internal/experiments"
	"setconsensus/internal/knowledge"
	"setconsensus/internal/model"
	"setconsensus/internal/sim"
	"setconsensus/internal/topology"
	"setconsensus/internal/unbeat"
	"setconsensus/internal/wire"
)

// Model types.
type (
	// Adversary is an input vector plus a crash failure pattern (§2.1).
	Adversary = model.Adversary
	// FailurePattern maps faulty processes to crash rounds and
	// crash-round delivery sets.
	FailurePattern = model.FailurePattern
	// Builder assembles adversaries fluently.
	Builder = model.Builder
	// Params configures a protocol: n processes, crash bound t, degree k.
	Params = core.Params
	// Protocol is any decision protocol runnable by the oracle backend.
	Protocol = sim.Protocol
	// SimResult is the oracle simulator's raw result; Engine.Run wraps it
	// in the unified Result.
	SimResult = sim.Result
	// Decision is one process's (value, time) decision.
	Decision = sim.Decision
	// Graph is the knowledge substrate of one run: views, hidden nodes,
	// hidden capacity, persistence.
	Graph = knowledge.Graph
	// Task is a k-set consensus task specification (uniform or not).
	Task = check.Task
	// CollapseParams configures the Fig. 4 separation family.
	CollapseParams = model.CollapseParams
	// BaselineKind selects a literature comparator protocol.
	BaselineKind = baseline.Kind
	// Space enumerates an exhaustive adversary space (n, t, rounds,
	// values) for searches and conformance sweeps.
	Space = enum.Space
	// RandomParams bounds the seeded random adversary sampler behind the
	// "random" workload.
	RandomParams = model.RandomParams
	// Summary is the constant-memory aggregate of a streamed sweep:
	// per-protocol decision-time histograms, undecided and
	// agreement-violation counts, and wire-bit totals.
	Summary = agg.Summary
	// ProtocolSummary is one protocol's row of a Summary.
	ProtocolSummary = agg.ProtocolSummary
	// SearchParams configures the bounded protocol-space search of
	// internal/unbeat.
	SearchParams = unbeat.SearchParams
	// SearchReport is the outcome of a protocol-space search.
	SearchReport = unbeat.SearchReport
	// Deviation is one early-decision override of a candidate rule.
	Deviation = unbeat.Deviation
	// Witness is a dominating deviation found by the search: typed view
	// ids, values, and the strict-win adversary's fingerprint.
	Witness = unbeat.Witness
	// AnalysisReport is the structured outcome of Engine.Analyze.
	AnalysisReport = unbeat.AnalysisReport
	// AnalysisProgress is one streamed snapshot of Engine.AnalyzeStream.
	AnalysisProgress = unbeat.Progress
	// CannotDecideCert is the Lemma 3 unbeatability certificate.
	CannotDecideCert = unbeat.CannotDecideCert
	// ForcedCert is the Lemma 1 forced-decision certificate.
	ForcedCert = unbeat.ForcedCert
	// Subdivision is the paper's subdivided simplex Div σ (Appendix B.1).
	Subdivision = topology.Subdivision
	// ExperimentTable is one rendered paper-reproduction table.
	ExperimentTable = experiments.Table
)

// Baseline protocol kinds (§5's "all known protocols").
const (
	FloodMin    = baseline.FloodMin
	EarlyCount  = baseline.EarlyCount
	UEarlyCount = baseline.UEarlyCount
	PerRound    = baseline.PerRound
	UPerRound   = baseline.UPerRound
)

// NewBuilder starts an adversary over n processes with a default input.
func NewBuilder(n int, defaultValue int) *Builder { return model.NewBuilder(n, defaultValue) }

// NewOptmin builds the unbeatable nonuniform k-set consensus protocol
// Optmin[k] (§4, Theorem 1). Prefer NewProtocol("optmin", p) / Engine.Run
// for name-driven construction.
func NewOptmin(p Params) (Protocol, error) { return core.NewOptmin(p) }

// NewUPmin builds the uniform k-set consensus protocol u-Pmin[k] (§5,
// Theorem 3).
func NewUPmin(p Params) (Protocol, error) { return core.NewUPmin(p) }

// NewOpt0 builds the k=1 specialization Opt0 (unbeatable consensus, §3).
func NewOpt0(n, t int) (Protocol, error) { return core.NewOpt0(n, t) }

// NewUOpt0 builds the k=1 specialization u-Opt0 (uniform consensus).
func NewUOpt0(n, t int) (Protocol, error) { return core.NewUOpt0(n, t) }

// NewBaseline builds one of the literature comparators.
func NewBaseline(kind BaselineKind, p Params) (Protocol, error) { return baseline.New(kind, p) }

// Run executes a protocol against an adversary on the oracle simulator.
// It is the single-shot, pre-Engine entry point; batch workloads go
// through Engine.Sweep, which shares knowledge graphs across protocols.
func Run(p Protocol, adv *Adversary) *SimResult { return sim.Run(p, adv) }

// NewGraph computes the knowledge graph of an adversary up to horizon.
func NewGraph(adv *Adversary, horizon int) *Graph { return knowledge.New(adv, horizon) }

// Verify checks a finished oracle run against a task specification
// (Decision / Validity / (Uniform) k-Agreement). Unified Results verify
// themselves via Result.Verify.
func Verify(res *SimResult, task Task) error { return check.VerifyRun(res, task) }

// Collapse builds the Fig. 4 separation family on which u-Pmin decides at
// time 2 while every prior protocol needs ⌊t/k⌋+1.
func Collapse(p CollapseParams) (*Adversary, error) { return model.Collapse(p) }

// CollapseT returns the crash bound t of a Collapse configuration.
func CollapseT(p CollapseParams) int { return model.CollapseT(p) }

// HiddenPath builds the Fig. 1 hidden-path adversary.
func HiddenPath(n, depth int) (*Adversary, error) { return model.HiddenPath(n, depth) }

// HiddenChains builds the Fig. 2 hidden-chains adversary.
func HiddenChains(n, c, m int, chainValues []int, defaultValue int) (*Adversary, error) {
	return model.HiddenChains(n, c, m, chainValues, defaultValue)
}

// CannotDecide builds the Lemma 3 certificate that a high node with
// hidden capacity ≥ k cannot decide in any protocol dominating Optmin[k].
// Cancelling ctx aborts the certificate's forcing recursions promptly.
// Engine.Analyze with the "forced" family certifies whole runs on the
// worker pool.
func CannotDecide(ctx context.Context, g *Graph, i, m, k int) (*CannotDecideCert, error) {
	return unbeat.CannotDecide(ctx, g, i, m, k)
}

// Search runs the bounded protocol-space search for a deviation that
// dominates base (the computational content of Theorem 1), sequentially.
// Engine.Analyze with the "search:optmin" / "search:upmin" families runs
// the same staged pipeline on the engine's pooled run path and worker
// pool.
func Search(ctx context.Context, base Protocol, p SearchParams) (*SearchReport, error) {
	return unbeat.Search(ctx, base, p)
}

// DivK builds the paper's subdivision Div σ for degree k (Appendix B.1).
func DivK(k int) (*Subdivision, error) { return topology.DivK(k) }

// RunWire executes the Appendix E compact-message protocol (Optmin rule)
// and reports decisions plus per-link bit counts. Engine with
// WithBackend(Wire) is the name-driven equivalent.
func RunWire(p Params, adv *Adversary) (*wire.Result, error) {
	return wire.Run(wire.RuleOptmin, p, adv)
}

// Experiment regenerates one of the paper-reproduction tables (E1–E10).
func Experiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// ExperimentIDs lists the experiment ids in presentation order.
func ExperimentIDs() []string {
	reg := experiments.Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}
