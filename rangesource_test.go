package setconsensus_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	setconsensus "setconsensus"
)

// newSweepEngine mirrors the workload-sweep engine configuration (crash
// bound from each adversary's own pattern).
func newSweepEngine(t *testing.T) *setconsensus.Engine {
	t.Helper()
	p := setconsensus.DefaultEngineParams()
	p.T = setconsensus.PatternCrashBound
	p.GraphCache = 0
	eng, err := setconsensus.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRangePartitionEquivalence is the distributed-sweep correctness
// backbone: sweeping any partition of a workload's offset space through
// RangeSource and merging the partial Summaries must reproduce the
// monolithic SweepSource result byte-for-byte — including partitions
// with empty and singleton ranges, merged in shuffled order. This is
// what entitles the coordinator to shard blindly.
func TestRangePartitionEquivalence(t *testing.T) {
	const workload = "space:n=3,t=1,r=2,v=0..1"
	refs := []string{"optmin", "upmin", "floodmin"}
	src, err := setconsensus.ParseWorkload(workload)
	if err != nil {
		t.Fatal(err)
	}
	eng := newSweepEngine(t)
	ctx := context.Background()

	mono, err := eng.SweepSource(ctx, refs, src)
	if err != nil {
		t.Fatal(err)
	}
	total := mono.Adversaries()
	if total < 4 {
		t.Fatalf("space too small to partition meaningfully: %d adversaries", total)
	}
	wantJSON := mustJSON(t, mono)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		// Random cut points, plus forced degenerate pieces: a singleton at a
		// random offset, an empty range inside the space, and a range
		// entirely past the end.
		cuts := map[int]bool{0: true, total: true}
		for n := rng.Intn(6) + 2; n > 0; n-- {
			cuts[rng.Intn(total)] = true
		}
		single := rng.Intn(total - 1)
		cuts[single], cuts[single+1] = true, true
		offs := make([]int, 0, len(cuts))
		for o := range cuts {
			offs = append(offs, o)
		}
		for i := range offs { // insertion sort; tiny
			for j := i; j > 0 && offs[j] < offs[j-1]; j-- {
				offs[j], offs[j-1] = offs[j-1], offs[j]
			}
		}
		type window struct{ off, lim int }
		parts := make([]window, 0, len(offs)+1)
		for i := 0; i+1 < len(offs); i++ {
			parts = append(parts, window{offs[i], offs[i+1] - offs[i]})
		}
		parts = append(parts,
			window{rng.Intn(total), 0}, // empty window inside the space
			window{total + 3, 5},       // wholly past the end
		)
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })

		agg, err := eng.NewAggregator(src.Label(), refs)
		if err != nil {
			t.Fatal(err)
		}
		merged := agg.Summary() // empty, mergeable base with the monolithic label
		for _, w := range parts {
			part, err := newSweepEngine(t).SweepSource(ctx, refs, setconsensus.RangeSource(src, w.off, w.lim))
			if err != nil {
				t.Fatalf("trial %d, window [%d,%d): %v", trial, w.off, w.off+w.lim, err)
			}
			if err := merged.Merge(part); err != nil {
				t.Fatalf("trial %d, window [%d,%d): merge: %v", trial, w.off, w.off+w.lim, err)
			}
		}
		if got := mustJSON(t, merged); got != wantJSON {
			t.Errorf("trial %d: partition-merged summary differs from monolithic:\n got %s\nwant %s",
				trial, got, wantJSON)
		}
	}
}

// TestRangeSourceWindowing pins the RangeSource contract the partitions
// rely on: clamped negatives, known-count clamping, and the window
// upper bound admission reads.
func TestRangeSourceWindowing(t *testing.T) {
	src, err := setconsensus.ParseWorkload("random:n=3,t=1,count=10,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		off, lim, want int
	}{
		{0, 10, 10}, {0, 4, 4}, {7, 10, 3}, {10, 5, 0}, {15, 5, 0}, {-3, -1, 0},
	} {
		r := setconsensus.RangeSource(src, tc.off, tc.lim)
		n, known := r.Count()
		if !known || n != tc.want {
			t.Errorf("RangeSource(%d, %d).Count() = %d, %v; want %d, true", tc.off, tc.lim, n, known, tc.want)
		}
		got := 0
		for range r.Seq() {
			got++
		}
		if got != tc.want {
			t.Errorf("RangeSource(%d, %d) yielded %d adversaries, want %d", tc.off, tc.lim, got, tc.want)
		}
	}
	b, ok := setconsensus.RangeSource(src, 2, 5).(interface{ CountUpperBound() float64 })
	if !ok {
		t.Fatal("RangeSource does not expose CountUpperBound")
	}
	if ub := b.CountUpperBound(); ub != 5 {
		t.Errorf("CountUpperBound = %v, want 5 (the window limit)", ub)
	}
}
