package setconsensus_test

import (
	"strings"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/model"
)

// TestDefaultWorkloadsCoverModelFamilies pins the contract that every
// named adversary family of internal/model is selectable by name in the
// default workload registry.
func TestDefaultWorkloadsCoverModelFamilies(t *testing.T) {
	reg := setconsensus.DefaultWorkloads()
	for _, fam := range model.Families() {
		spec, err := reg.Lookup(fam.Name)
		if err != nil {
			t.Errorf("family %q not registered: %v", fam.Name, err)
			continue
		}
		if spec.Summary != fam.Summary {
			t.Errorf("family %q: registry summary %q, model summary %q", fam.Name, spec.Summary, fam.Summary)
		}
	}
	if _, err := reg.Lookup("space"); err != nil {
		t.Errorf("space workload missing: %v", err)
	}
}

// TestParseWorkloadDefaults checks that every registered workload parses
// with no arguments and yields a non-empty, restartable stream of valid
// adversaries.
func TestParseWorkloadDefaults(t *testing.T) {
	for _, name := range setconsensus.Workloads() {
		t.Run(name, func(t *testing.T) {
			src, err := setconsensus.ParseWorkload(name)
			if err != nil {
				t.Fatal(err)
			}
			if src.Label() == "" {
				t.Error("empty label")
			}
			n := 0
			for adv := range src.Seq() {
				if err := adv.Validate(-1, -1); err != nil {
					t.Fatalf("invalid adversary: %v", err)
				}
				n++
				if n >= 50 {
					break
				}
			}
			if n == 0 {
				t.Fatal("default workload is empty")
			}
			if c, known := src.Count(); known && c != n && n < 50 {
				t.Errorf("Count = %d but stream yielded %d", c, n)
			}
		})
	}
}

func TestParseWorkloadParameters(t *testing.T) {
	// A range parameter sweeps the family: one adversary per step.
	src, err := setconsensus.ParseWorkload("collapse:k=3,r=2..5")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.Count(); !ok || n != 4 {
		t.Fatalf("collapse r=2..5 Count = %d,%v", n, ok)
	}
	i := 0
	for adv := range src.Seq() {
		wantN := 3*(2+i+1) + 5 // t = k(r+1), n = t + extra (extra = k+2)
		if adv.N() != wantN {
			t.Errorf("step %d: n = %d, want %d", i, adv.N(), wantN)
		}
		i++
	}

	// Scalar parameters pin a single adversary.
	src, err = setconsensus.ParseWorkload("hiddenpath:depth=3,n=6")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.Count(); !ok || n != 1 {
		t.Fatalf("pinned hiddenpath Count = %d,%v", n, ok)
	}

	// The exhaustive space syntax from the issue.
	src, err = setconsensus.ParseWorkload("space:n=4,t=2,r=2,v=0..1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(src.Label(), "space:") {
		t.Errorf("label = %q", src.Label())
	}

	// Case-insensitive names, whitespace tolerated.
	if _, err := setconsensus.ParseWorkload(" SilentRounds:k=1,r=2 "); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}

	// random honors count and seed.
	src, err = setconsensus.ParseWorkload("random:count=7,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.Count(); !ok || n != 7 {
		t.Fatalf("random Count = %d,%v", n, ok)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	bad := []string{
		"nonsense",                 // unknown workload
		"collapse:r=1",             // family constraint violated (R ≥ 2)
		"collapse:k=two",           // junk integer
		"collapse:r=5..2",          // empty range
		"collapse:bogus=1",         // unknown parameter
		"collapse:k=2,k=3",         // duplicate parameter
		"collapse:k",               // malformed pair
		"space:n=1",                // invalid space
		"random:t=9,n=3",           // t > n-1
		"hiddenpath:depth=5,n=4",   // n < depth+2
		"silentrounds:k=2,extra=1", // extra < k+1
		"hiddenchains:c=0",         // c < 1
		"random:count=-1",          // negative count
		"collapse:low=maybe",       // junk boolean
	}
	for _, ref := range bad {
		if _, err := setconsensus.ParseWorkload(ref); err == nil {
			t.Errorf("%q must fail to parse", ref)
		}
	}
}

func TestWorkloadRegistryRegistration(t *testing.T) {
	r := setconsensus.NewWorkloadRegistry()
	mk := func(args setconsensus.WorkloadArgs) (setconsensus.Source, error) {
		return setconsensus.SliceSource(setconsensus.NewBuilder(3, 0).MustBuild()), nil
	}
	if err := r.Register(setconsensus.WorkloadSpec{Name: "w1", Aliases: []string{"one"}, New: mk}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(setconsensus.WorkloadSpec{Name: "W1", New: mk}); err == nil {
		t.Error("duplicate name must fail")
	}
	if err := r.Register(setconsensus.WorkloadSpec{Name: "one", New: mk}); err == nil {
		t.Error("name colliding with an alias must fail")
	}
	if err := r.Register(setconsensus.WorkloadSpec{Name: "", New: mk}); err == nil {
		t.Error("empty name must fail")
	}
	if err := r.Register(setconsensus.WorkloadSpec{Name: "w2"}); err == nil {
		t.Error("nil constructor must fail")
	}
	if _, err := r.Parse("one"); err != nil {
		t.Errorf("alias parse failed: %v", err)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "w1" {
		t.Errorf("Names = %v", names)
	}
	if specs := r.Specs(); len(specs) != 1 || specs[0].Name != "w1" {
		t.Errorf("Specs wrong: %+v", specs)
	}
}
