package setconsensus_test

import (
	"context"
	"testing"

	setconsensus "setconsensus"
	"setconsensus/internal/govern"
)

// TestGovernedSweepByteIdentical pins the governance invariant that
// shedding is a memory mode, not a result mode: the same sweep run on
// an ungoverned engine, a governed engine with room to retain, and a
// governed engine shedding the whole way (soft ceiling of one byte, so
// every Release frees instead of recycling) renders byte-identical
// Summary tables.
func TestGovernedSweepByteIdentical(t *testing.T) {
	ctx := context.Background()
	refs := []string{"optmin", "upmin"}
	space := setconsensus.Space{N: 3, T: 2, MaxRound: 2, Values: []int{0, 1}}

	render := func(t *testing.T, opts ...setconsensus.Option) string {
		t.Helper()
		src, err := setconsensus.SpaceSource(space)
		if err != nil {
			t.Fatal(err)
		}
		eng := setconsensus.New(append([]setconsensus.Option{
			setconsensus.WithCrashBound(2),
			setconsensus.WithGraphCache(0),
		}, opts...)...)
		sum, err := eng.SweepSource(ctx, refs, src)
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		return setconsensus.SummaryTable(sum).Render()
	}

	plain := render(t)
	retained := render(t, setconsensus.WithGovernor(govern.New(0, 0)))
	shedding := render(t, setconsensus.WithGovernor(govern.New(1, 0)))

	if retained != plain {
		t.Errorf("governed (retaining) summary differs from ungoverned:\n%s\n---\n%s", retained, plain)
	}
	if shedding != plain {
		t.Errorf("governed (shedding) summary differs from ungoverned:\n%s\n---\n%s", shedding, plain)
	}
}

// TestGovernedEngineAccountingDrains pins the ledger: a governed sweep
// meters a nonzero live-byte account while its pools are warm, shedding
// mode holds the steady-state account near zero, and Engine.Close
// returns every byte — the invariant that lets one governor meter many
// short-lived per-job engines without drift.
func TestGovernedEngineAccountingDrains(t *testing.T) {
	ctx := context.Background()
	refs := []string{"optmin"}
	src, err := setconsensus.SpaceSource(setconsensus.Space{N: 3, T: 1, MaxRound: 2, Values: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}

	gov := govern.New(0, 0)
	eng := setconsensus.New(
		setconsensus.WithCrashBound(1),
		setconsensus.WithGraphCache(0),
		setconsensus.WithGovernor(gov),
	)
	if _, err := eng.SweepSource(ctx, refs, src); err != nil {
		t.Fatal(err)
	}
	if gov.Live() <= 0 {
		t.Fatalf("live account = %d after a governed sweep with warm pools, want > 0", gov.Live())
	}
	eng.Close()
	if gov.Live() != 0 {
		t.Fatalf("live account = %d after Close, want 0 — bytes leaked or double-counted", gov.Live())
	}

	// Shedding: with a 1-byte soft ceiling nothing is retained between
	// runs, so after the sweep the account holds only what Close would
	// free anyway, and Close still zeroes it exactly.
	shedGov := govern.New(1, 0)
	shedEng := setconsensus.New(
		setconsensus.WithCrashBound(1),
		setconsensus.WithGraphCache(0),
		setconsensus.WithGovernor(shedGov),
	)
	src2, err := setconsensus.SpaceSource(setconsensus.Space{N: 3, T: 1, MaxRound: 2, Values: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shedEng.SweepSource(ctx, refs, src2); err != nil {
		t.Fatal(err)
	}
	if shedGov.Stats().Sheds == 0 && shedGov.Live() > 0 {
		t.Logf("note: shedding engine retained %d bytes", shedGov.Live())
	}
	shedEng.Close()
	if shedGov.Live() != 0 {
		t.Fatalf("shedding engine live account = %d after Close, want 0", shedGov.Live())
	}
}
