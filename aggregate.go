package setconsensus

import (
	"fmt"
	"sync"
	"sync/atomic"

	"setconsensus/internal/agg"
	"setconsensus/internal/experiments"
)

// Aggregator folds streamed Results into a constant-memory Summary:
// per-protocol decision-time histograms, undecided and task-violation
// counts, and wire-bit totals. Engine.SweepSource drives one internally;
// build one explicitly to aggregate SweepStream or hand-run Results. Add
// is safe for concurrent use.
type Aggregator struct {
	mu    sync.Mutex
	sum   *agg.Summary
	tasks map[string]Task
	// tasksByIdx mirrors tasks in sweep ref order for the sharded fold
	// path, which addresses protocols by index instead of map lookup.
	tasksByIdx []Task
	// advs counts the adversaries fully folded by the sharded path — one
	// atomic bump per adversary (not per run), so the progress feed costs
	// the hot loop a single uncontended add per len(tasksByIdx) runs.
	advs atomic.Int64
}

// SweepProgress is one streamed snapshot of a running aggregating sweep:
// the count of adversaries fully folded so far and the runs they
// contributed (adversaries × protocols — foldOne folds all protocols of
// an adversary before bumping). It is the sweep-side analogue of
// AnalysisProgress, consumed by Engine.SweepSourceProgress and streamed
// over SSE by the job service. Total stays 0 for exhaustive spaces,
// whose canonical size is only discovered by walking them.
type SweepProgress struct {
	Adversaries int `json:"adversaries"`
	Runs        int `json:"runs"`
	Total       int `json:"total,omitempty"`
}

// Progress snapshots the sharded fold counters. Safe for concurrent use
// with a running sweep; the snapshot is monotone.
func (a *Aggregator) Progress() SweepProgress {
	n := int(a.advs.Load())
	return SweepProgress{Adversaries: n, Runs: n * len(a.tasksByIdx)}
}

// advDone records one fully folded adversary for the progress feed.
func (a *Aggregator) advDone() { a.advs.Add(1) }

// NewAggregator builds an aggregator for the named protocols, verifying
// every run against the task its protocol claims to solve at the
// engine's degree. The workload label captions the summary. Duplicate
// refs are rejected: the summary keys rows by ref, so a repeated ref
// would fold two runs per adversary into one row and skew every count.
func (e *Engine) NewAggregator(workload string, refs []string) (*Aggregator, error) {
	if e.err != nil {
		return nil, e.err
	}
	tasks := make(map[string]Task, len(refs))
	tasksByIdx := make([]Task, 0, len(refs))
	for _, ref := range refs {
		if _, dup := tasks[ref]; dup {
			return nil, fmt.Errorf("engine: duplicate protocol %q in aggregated sweep", ref)
		}
		spec, err := e.reg.Lookup(ref)
		if err != nil {
			return nil, err
		}
		tasks[ref] = spec.Task(e.params.K)
		tasksByIdx = append(tasksByIdx, tasks[ref])
	}
	return &Aggregator{sum: agg.New(workload, refs), tasks: tasks, tasksByIdx: tasksByIdx}, nil
}

// fold computes one pooled run's observation and bumps the worker's
// shard accumulator — the lock-free per-run half of the sharded
// aggregation contract (mergeShard is the once-per-worker other half).
// The Result is the RunBuffer's pooled result; nothing here retains it.
func (a *Aggregator) fold(acc *agg.Acc, refIdx int, r *Result, buf *RunBuffer) {
	o := agg.Obs{Time: r.MaxCorrectTime}
	if r.MaxCorrectTime >= 0 {
		o.Violation = buf.verifyResult(r, a.tasksByIdx[refIdx]) != nil
	}
	if r.Bits != nil {
		o.Bits = int64(r.Bits.Total)
		o.MaxPairBits = r.Bits.MaxPair
	}
	acc.Observe(o)
}

// mergeShard folds a worker's accumulators (indexed like the sweep's
// refs) into the summary under the aggregator lock — the only
// synchronization point of a sharded sweep — and resets them.
func (a *Aggregator) mergeShard(shard []agg.Acc) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range shard {
		shard[i].FlushTo(a.sum.Protocols[i])
	}
}

// Add folds one run into the summary. Results whose Ref the aggregator
// was not built for are counted against nothing and ignored. Runs where
// a correct process never decided land in the Undecided column only;
// Violations counts validity and k-agreement failures among runs that
// did decide.
func (a *Aggregator) Add(r *Result) {
	o := agg.Obs{Time: r.MaxCorrectTime}
	if task, ok := a.tasks[r.Ref]; ok && r.MaxCorrectTime >= 0 {
		o.Violation = r.Verify(task) != nil
	}
	if r.Bits != nil {
		o.Bits = int64(r.Bits.Total)
		o.MaxPairBits = r.Bits.MaxPair
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	_ = a.sum.Observe(r.Ref, o)
}

// Summary returns a deep-copy snapshot of the aggregate so far.
func (a *Aggregator) Summary() *Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum.Clone()
}

// Table renders the current aggregate in the experiment table format.
func (a *Aggregator) Table() *ExperimentTable {
	return experiments.SweepTable(a.Summary())
}

// SummaryTable renders a Summary in the experiment table format.
func SummaryTable(s *Summary) *ExperimentTable { return experiments.SweepTable(s) }
