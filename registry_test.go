package setconsensus_test

import (
	"context"
	"strings"
	"testing"

	setconsensus "setconsensus"
)

func TestRegistryLookupNamesAliasesCase(t *testing.T) {
	reg := setconsensus.DefaultRegistry()
	for _, name := range []string{"optmin", "OPTMIN", "pmin", "upmin", "u-pmin", "u-earlycount", "uearlycount"} {
		if _, err := reg.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := reg.Lookup("no-such-protocol"); err == nil {
		t.Error("unknown name must error")
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown-name error should list known protocols, got: %v", err)
	}
	names := reg.Names()
	if len(names) != 9 {
		t.Fatalf("expected 9 built-in protocols, got %d: %v", len(names), names)
	}
	if names[0] != "optmin" {
		t.Errorf("registration order lost: %v", names)
	}
}

func TestRegistryMetadata(t *testing.T) {
	p := setconsensus.Params{N: 5, T: 3, K: 1}
	for _, c := range []struct {
		name       string
		uniform    bool
		wire       bool
		unbeatable bool
	}{
		{"optmin", false, true, true},
		{"upmin", true, true, true},
		{"opt0", false, true, true},
		{"uopt0", true, true, true},
		{"floodmin", true, false, false},
		{"earlycount", false, false, false},
		{"u-earlycount", true, false, false},
		{"perround", false, false, false},
		{"u-perround", true, false, false},
	} {
		spec, err := setconsensus.LookupProtocol(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if spec.Uniform != c.uniform || spec.WireCapable() != c.wire || spec.Unbeatable != c.unbeatable {
			t.Errorf("%s: uniform=%v wire=%v unbeatable=%v", c.name, spec.Uniform, spec.WireCapable(), spec.Unbeatable)
		}
		if wc := spec.WorstCaseTime(p); wc != p.T/p.K+1 {
			t.Errorf("%s: worst case %d, want %d", c.name, wc, p.T/p.K+1)
		}
		if task := spec.Task(2); task.Uniform != c.uniform || task.K != 2 {
			t.Errorf("%s: task %v", c.name, task)
		}
		proto, err := spec.New(p)
		if err != nil {
			t.Fatalf("%s: construct: %v", c.name, err)
		}
		if proto.Name() == "" {
			t.Errorf("%s: empty runtime name", c.name)
		}
	}
}

func TestRegistryRejectsDuplicatesAndBadSpecs(t *testing.T) {
	reg := setconsensus.NewRegistry()
	spec := setconsensus.ProtocolSpec{
		Name:          "demo",
		Aliases:       []string{"demo2"},
		WorstCaseTime: func(p setconsensus.Params) int { return p.T + 1 },
		New: func(p setconsensus.Params) (setconsensus.Protocol, error) {
			return setconsensus.NewOptmin(p)
		},
	}
	if err := reg.Register(spec); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(spec); err == nil {
		t.Error("duplicate name must be rejected")
	}
	dup := spec
	dup.Name = "demo2" // collides with the alias
	if err := reg.Register(dup); err == nil {
		t.Error("name colliding with alias must be rejected")
	}
	var bad setconsensus.ProtocolSpec
	if err := reg.Register(bad); err == nil {
		t.Error("empty spec must be rejected")
	}
	bad.Name = "x"
	if err := reg.Register(bad); err == nil {
		t.Error("spec without constructor must be rejected")
	}
}

func TestEngineWithCustomRegistry(t *testing.T) {
	reg := setconsensus.NewRegistry()
	reg.MustRegister(setconsensus.ProtocolSpec{
		Name:          "myoptmin",
		WorstCaseTime: func(p setconsensus.Params) int { return p.T/p.K + 1 },
		New: func(p setconsensus.Params) (setconsensus.Protocol, error) {
			return setconsensus.NewOptmin(p)
		},
	})
	eng := setconsensus.New(setconsensus.WithRegistry(reg), setconsensus.WithDegree(2), setconsensus.WithCrashBound(2))
	adv := setconsensus.NewBuilder(5, 2).Input(0, 0).MustBuild()
	res, err := eng.Run(context.Background(), "myoptmin", adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "Optmin[2]" || res.Ref != "myoptmin" {
		t.Errorf("protocol=%q ref=%q", res.Protocol, res.Ref)
	}
	// The default registry's names are not visible through this engine.
	if _, err := eng.Run(context.Background(), "floodmin", adv); err == nil {
		t.Error("custom registry must not resolve default names")
	}
}
