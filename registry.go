package setconsensus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"setconsensus/internal/baseline"
	"setconsensus/internal/core"
	"setconsensus/internal/wire"
)

// ProtocolSpec describes one named protocol: how to construct it and the
// metadata consumers need to run and judge it (which task it solves, its
// worst-case decision time, and whether the compact wire encoding can
// carry it). Specs are registered in a Registry and resolved by name, so
// no consumer ever switches on protocol names.
type ProtocolSpec struct {
	// Name is the canonical lookup key, e.g. "optmin". Lookups are
	// case-insensitive.
	Name string
	// Aliases are additional lookup keys (e.g. "u-pmin" for "upmin").
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// Uniform reports whether the protocol solves the uniform task —
	// i.e. whether faulty processes' decisions count toward k-Agreement.
	Uniform bool
	// Unbeatable marks the paper's own protocols (§4, §5), as opposed to
	// the literature baselines they dominate.
	Unbeatable bool
	// WorstCaseTime bounds the time by which every correct process has
	// decided under params p; the oracle backend uses it as the horizon.
	WorstCaseTime func(p Params) int
	// New constructs the full-information protocol for the oracle
	// backend.
	New func(p Params) (Protocol, error)
	// WireRule is the decision rule of the Appendix E compact protocol
	// for the wire and goroutine backends; zero means the protocol is
	// full-information only and cannot run on those backends.
	WireRule wire.Rule
}

// WireCapable reports whether the spec can run on the wire and goroutine
// backends.
func (s *ProtocolSpec) WireCapable() bool { return s.WireRule != 0 }

// Task returns the task specification the protocol claims to solve at
// degree k.
func (s *ProtocolSpec) Task(k int) Task { return Task{K: k, Uniform: s.Uniform} }

// Registry maps protocol names to specs. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*ProtocolSpec // canonical (lowercased) name → spec
	alias map[string]string        // lowercased alias → canonical name
	order []string                 // registration order of canonical names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		specs: make(map[string]*ProtocolSpec),
		alias: make(map[string]string),
	}
}

// Register adds a spec. It fails on empty or duplicate names (including
// alias collisions) and on specs missing a constructor.
func (r *Registry) Register(spec ProtocolSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("registry: spec with empty name")
	}
	if spec.New == nil {
		return fmt.Errorf("registry: %s: nil constructor", spec.Name)
	}
	if spec.WorstCaseTime == nil {
		return fmt.Errorf("registry: %s: nil WorstCaseTime", spec.Name)
	}
	key := strings.ToLower(spec.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.specs[key]; dup {
		return fmt.Errorf("registry: protocol %q already registered", spec.Name)
	}
	if _, dup := r.alias[key]; dup {
		return fmt.Errorf("registry: name %q already registered as an alias", spec.Name)
	}
	for _, a := range spec.Aliases {
		ak := strings.ToLower(a)
		if _, dup := r.specs[ak]; dup {
			return fmt.Errorf("registry: alias %q collides with a protocol name", a)
		}
		if _, dup := r.alias[ak]; dup {
			return fmt.Errorf("registry: alias %q already registered", a)
		}
	}
	s := spec
	r.specs[key] = &s
	for _, a := range spec.Aliases {
		r.alias[strings.ToLower(a)] = key
	}
	r.order = append(r.order, key)
	return nil
}

// MustRegister is Register for static registrations.
func (r *Registry) MustRegister(spec ProtocolSpec) {
	if err := r.Register(spec); err != nil {
		panic(err)
	}
}

// Lookup resolves a protocol name or alias, case-insensitively.
func (r *Registry) Lookup(name string) (*ProtocolSpec, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	r.mu.RLock()
	defer r.mu.RUnlock()
	if s, ok := r.specs[key]; ok {
		return s, nil
	}
	if canon, ok := r.alias[key]; ok {
		return r.specs[canon], nil
	}
	known := make([]string, 0, len(r.specs))
	for k := range r.specs {
		known = append(known, k)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("registry: unknown protocol %q (known: %s)", name, strings.Join(known, ", "))
}

// New resolves name and constructs the protocol for params p.
func (r *Registry) New(name string, p Params) (Protocol, error) {
	spec, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return spec.New(p)
}

// Names returns the canonical protocol names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Specs returns all registered specs in registration order.
func (r *Registry) Specs() []*ProtocolSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ProtocolSpec, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.specs[k])
	}
	return out
}

// defaultRegistry holds every protocol in the repository: the paper's
// unbeatable protocols, their k=1 specializations, and the five
// literature baselines (§5's "all known protocols").
var defaultRegistry = func() *Registry {
	r := NewRegistry()
	horizon := func(p Params) int { return p.T/p.K + 1 }
	r.MustRegister(ProtocolSpec{
		Name:          "optmin",
		Aliases:       []string{"pmin"},
		Summary:       "Optmin[k] — unbeatable nonuniform k-set consensus (§4, Thm. 1)",
		Unbeatable:    true,
		WorstCaseTime: horizon,
		New:           func(p Params) (Protocol, error) { return core.NewOptmin(p) },
		WireRule:      wire.RuleOptmin,
	})
	r.MustRegister(ProtocolSpec{
		Name:          "upmin",
		Aliases:       []string{"u-pmin"},
		Summary:       "u-Pmin[k] — early-deciding uniform k-set consensus (§5, Thm. 3)",
		Uniform:       true,
		Unbeatable:    true,
		WorstCaseTime: horizon,
		New:           func(p Params) (Protocol, error) { return core.NewUPmin(p) },
		WireRule:      wire.RuleUPmin,
	})
	r.MustRegister(ProtocolSpec{
		Name:          "opt0",
		Summary:       "Opt0 — unbeatable consensus, the k=1 specialization of Optmin (§3)",
		Unbeatable:    true,
		WorstCaseTime: horizon,
		New: func(p Params) (Protocol, error) {
			if p.K != 1 {
				return nil, fmt.Errorf("opt0: consensus protocol needs k=1, got %d", p.K)
			}
			return core.NewOpt0(p.N, p.T)
		},
		WireRule: wire.RuleOptmin,
	})
	r.MustRegister(ProtocolSpec{
		Name:          "uopt0",
		Aliases:       []string{"u-opt0"},
		Summary:       "u-Opt0 — uniform consensus, the k=1 specialization of u-Pmin (§3)",
		Uniform:       true,
		Unbeatable:    true,
		WorstCaseTime: horizon,
		New: func(p Params) (Protocol, error) {
			if p.K != 1 {
				return nil, fmt.Errorf("uopt0: consensus protocol needs k=1, got %d", p.K)
			}
			return core.NewUOpt0(p.N, p.T)
		},
		WireRule: wire.RuleUPmin,
	})
	for _, b := range []struct {
		name, alias, summary string
		kind                 baseline.Kind
	}{
		{"floodmin", "", "FloodMin[k] — worst-case optimal flooding, decides at ⌊t/k⌋+1", baseline.FloodMin},
		{"earlycount", "", "EarlyCount[k] — nonuniform early deciding on known-failure counts", baseline.EarlyCount},
		{"u-earlycount", "uearlycount", "u-EarlyCount[k] — uniform early deciding on known-failure counts", baseline.UEarlyCount},
		{"perround", "", "PerRound[k] — nonuniform early deciding on per-round failure discovery", baseline.PerRound},
		{"u-perround", "uperround", "u-PerRound[k] — uniform early deciding on per-round failure discovery", baseline.UPerRound},
	} {
		kind := b.kind
		var aliases []string
		if b.alias != "" {
			aliases = []string{b.alias}
		}
		r.MustRegister(ProtocolSpec{
			Name:          b.name,
			Aliases:       aliases,
			Summary:       b.summary,
			Uniform:       kind.Uniform(),
			WorstCaseTime: horizon,
			New:           func(p Params) (Protocol, error) { return baseline.New(kind, p) },
		})
	}
	return r
}()

// DefaultRegistry returns the registry holding every built-in protocol.
// Callers may Register additional protocols on it; engines built without
// WithRegistry resolve names against it.
func DefaultRegistry() *Registry { return defaultRegistry }

// LookupProtocol resolves a name in the default registry.
func LookupProtocol(name string) (*ProtocolSpec, error) { return defaultRegistry.Lookup(name) }

// NewProtocol resolves a name in the default registry and constructs the
// protocol for params p.
func NewProtocol(name string, p Params) (Protocol, error) { return defaultRegistry.New(name, p) }

// Protocols returns the canonical names in the default registry.
func Protocols() []string { return defaultRegistry.Names() }
