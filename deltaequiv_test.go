package setconsensus_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	setconsensus "setconsensus"
)

// summaryBytes renders a summary as JSON with the workload label blanked,
// so sweeps of the same adversaries through differently labeled sources
// can be compared byte for byte.
func summaryBytes(t *testing.T, s *setconsensus.Summary) []byte {
	t.Helper()
	s.Workload = ""
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeltaSweepMatchesCanonicalRandomized is the equivalence guarantee
// behind the delta-order sweep path: on randomized spaces, the engine's
// streamed sweep — which enters the Gray-code enumeration, aligns worker
// chunks to pattern blocks, and patches knowledge graphs between
// single-input neighbours — must produce a Summary byte-identical to a
// sweep of the same adversaries materialized as a slice, where every
// graph is built from scratch. Randomized offset windows additionally
// enter pattern blocks mid-way (Range's resume entry points), where
// patching must re-seed from a full build. Run under -race this also
// exercises the sharded fold across parallel workers.
func TestDeltaSweepMatchesCanonicalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	refs := []string{"upmin", "floodmin"}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(2)   // 2..3 processes
		f := 1 + rng.Intn(n-1) // 1..n-1 crashes
		maxRound := 1 + rng.Intn(2)
		values := []int{0, 1}
		if rng.Intn(2) == 0 {
			values = []int{0, 1, 2}
		}
		space := setconsensus.Space{N: n, T: f, MaxRound: maxRound, Values: values}
		eng := setconsensus.New(
			setconsensus.WithCrashBound(f),
			setconsensus.WithParallelism(2),
			setconsensus.WithGraphCache(0),
		)

		advs, err := space.Adversaries()
		if err != nil {
			t.Fatal(err)
		}
		spaceSrc, err := setconsensus.SpaceSource(space)
		if err != nil {
			t.Fatal(err)
		}

		// Full space: delta-order stream vs materialized slice.
		deltaSum, err := eng.SweepSource(context.Background(), refs, spaceSrc)
		if err != nil {
			t.Fatal(err)
		}
		sliceSum, err := eng.SweepSource(context.Background(), refs, setconsensus.SliceSource(advs...))
		if err != nil {
			t.Fatal(err)
		}
		got, want := summaryBytes(t, deltaSum), summaryBytes(t, sliceSum)
		if string(got) != string(want) {
			t.Fatalf("%s: delta sweep diverges from canonical slice:\n%s\n%s", space.Label(), got, want)
		}

		// Random window, deliberately not aligned to the pattern block:
		// the range source resumes the Gray code mid-block, so the first
		// adversary of the window must rebuild, not patch.
		off := rng.Intn(len(advs))
		lim := 1 + rng.Intn(len(advs)-off)
		rangeSum, err := eng.SweepSource(context.Background(), refs,
			setconsensus.RangeSource(spaceSrc, off, lim))
		if err != nil {
			t.Fatal(err)
		}
		windowSum, err := eng.SweepSource(context.Background(), refs,
			setconsensus.SliceSource(advs[off:off+lim]...))
		if err != nil {
			t.Fatal(err)
		}
		got, want = summaryBytes(t, rangeSum), summaryBytes(t, windowSum)
		if string(got) != string(want) {
			t.Fatalf("%s: Range(%d,%d) sweep diverges from canonical window:\n%s\n%s",
				space.Label(), off, lim, got, want)
		}
	}
}
